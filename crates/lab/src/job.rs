//! Grid expansion and stable job identity.
//!
//! A [`Job`] is one cell of the campaign grid. Its identity is a
//! **content hash** over the fields that determine the result
//! (family, size, seed, R, solver) — not its position in the spec —
//! so reordering or extending a spec never invalidates completed work,
//! and a rerun can skip any job whose hash already appears in the
//! record log.

use crate::spec::CampaignSpec;
// The workspace-wide stable hash primitive lives in `mmlp-instance`
// (`mmlp_instance::hash`); re-exported here because job ids predate the
// extraction and downstream code links it via this path.
pub use mmlp_instance::hash::fnv1a64;

/// The solver variants a campaign can sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SolverKind {
    /// The paper's local algorithm (§4 transform + §5), centralized
    /// evaluation.
    Local,
    /// The factor-`ΔI` safe baseline of the predecessor works.
    Safe,
    /// The exact LP optimum via the two-phase simplex.
    Exact,
    /// The §5 algorithm as an actual message-passing protocol on the
    /// port-numbered simulator (bit-identical to `Local`, but with
    /// round/message/byte accounting).
    Distributed,
    /// The §1.3 dynamic corollary: boot a [`DynamicSolver`] on the
    /// instance, stream a chain of random coefficient edits through it,
    /// and certify the repaired state bit-identical to a from-scratch
    /// solve after every edit. Requires a special-form family.
    ///
    /// [`DynamicSolver`]: mmlp_core::dynamic::DynamicSolver
    Mutating,
}

impl SolverKind {
    /// Stable name used in specs, record logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Local => "local",
            SolverKind::Safe => "safe",
            SolverKind::Exact => "exact",
            SolverKind::Distributed => "distributed",
            SolverKind::Mutating => "mutating",
        }
    }

    /// Inverse of [`SolverKind::name`].
    pub fn from_name(name: &str) -> Option<SolverKind> {
        match name {
            "local" => Some(SolverKind::Local),
            "safe" => Some(SolverKind::Safe),
            "exact" => Some(SolverKind::Exact),
            "distributed" => Some(SolverKind::Distributed),
            "mutating" => Some(SolverKind::Mutating),
            _ => None,
        }
    }

    /// Whether the solver's output depends on the locality parameter
    /// `R`. R-insensitive solvers get a single job per grid point
    /// instead of one per R value.
    pub fn uses_r(&self) -> bool {
        matches!(
            self,
            SolverKind::Local | SolverKind::Distributed | SolverKind::Mutating
        )
    }

    /// All solver kinds, in spec order.
    pub fn all() -> [SolverKind; 5] {
        [
            SolverKind::Local,
            SolverKind::Safe,
            SolverKind::Exact,
            SolverKind::Distributed,
            SolverKind::Mutating,
        ]
    }
}

/// One cell of the campaign grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Job {
    /// Generator family name (`mmlp_gen::catalog`).
    pub family: String,
    /// Instance size passed to the generator.
    pub size: usize,
    /// Generator seed.
    pub seed: u64,
    /// Locality parameter; `0` for R-insensitive solvers.
    pub big_r: usize,
    /// The solver variant to run.
    pub solver: SolverKind,
}

impl Job {
    /// The canonical key the content hash is computed over.
    pub fn canonical_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.family,
            self.size,
            self.seed,
            self.big_r,
            self.solver.name()
        )
    }

    /// Stable 64-bit content hash (FNV-1a over the canonical key),
    /// rendered as 16 hex digits.
    pub fn id(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_key().as_bytes()))
    }
}

/// Expands a spec into its job list, in deterministic grid order.
/// R-insensitive solvers are deduplicated across the R axis, and
/// duplicate grid cells (repeated spec directives can overlap, e.g.
/// `seeds 0 1` followed by `seeds 1 2`) collapse to one job — duplicate
/// ids would otherwise run twice and make status accounting (which
/// counts completed jobs as a set) report the campaign incomplete
/// forever.
pub fn expand(spec: &CampaignSpec) -> Vec<Job> {
    let mut seen = std::collections::HashSet::new();
    let mut jobs: Vec<Job> = Vec::new();
    for family in &spec.families {
        for &size in &spec.sizes {
            for &seed in &spec.seeds {
                for &solver in &spec.solvers {
                    if solver.uses_r() {
                        for &big_r in &spec.rs {
                            jobs.push(Job {
                                family: family.clone(),
                                size,
                                seed,
                                big_r,
                                solver,
                            });
                        }
                    } else {
                        jobs.push(Job {
                            family: family.clone(),
                            size,
                            seed,
                            big_r: 0,
                            solver,
                        });
                    }
                }
            }
        }
    }
    jobs.retain(|j| seen.insert(j.id()));
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            families: vec!["cycle".into(), "bandwidth".into()],
            sizes: vec![12, 24],
            seeds: vec![0, 1, 2],
            rs: vec![2, 3],
            solvers: vec![SolverKind::Local, SolverKind::Exact],
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn expansion_counts_and_dedupes_r() {
        let jobs = expand(&spec());
        // 2 families × 2 sizes × 3 seeds × (local × 2 R + exact × 1).
        assert_eq!(jobs.len(), 2 * 2 * 3 * 3);
        assert!(jobs
            .iter()
            .filter(|j| j.solver == SolverKind::Exact)
            .all(|j| j.big_r == 0));
        let ids: std::collections::HashSet<String> = jobs.iter().map(Job::id).collect();
        assert_eq!(ids.len(), jobs.len(), "job ids are unique");
    }

    #[test]
    fn overlapping_axis_values_expand_once() {
        let mut s = spec();
        // Repeated directives append, so overlaps are easy to write by
        // hand; the grid must still contain each cell once.
        s.seeds = vec![0, 1, 1, 2, 0];
        s.families.push("cycle".into());
        let jobs = expand(&s);
        assert_eq!(jobs.len(), expand(&spec()).len());
        let ids: std::collections::HashSet<String> = jobs.iter().map(Job::id).collect();
        assert_eq!(ids.len(), jobs.len());
    }

    #[test]
    fn hash_is_content_based_and_stable() {
        let job = Job {
            family: "cycle".into(),
            size: 12,
            seed: 7,
            big_r: 3,
            solver: SolverKind::Local,
        };
        // Pinned value: changing it silently would orphan every existing
        // record log, so a change must be deliberate.
        assert_eq!(job.id(), format!("{:016x}", fnv1a64(b"cycle|12|7|3|local")));
        let again = job.clone();
        assert_eq!(job.id(), again.id());
        let mut other = job.clone();
        other.seed = 8;
        assert_ne!(job.id(), other.id());
    }

    #[test]
    fn solver_names_round_trip() {
        for s in SolverKind::all() {
            assert_eq!(SolverKind::from_name(s.name()), Some(s));
        }
        assert_eq!(SolverKind::from_name("nope"), None);
    }
}
