//! Campaign orchestration: resumable runs and status inspection.
//!
//! A campaign directory holds two files:
//!
//! * `spec.lab` — a copy of the spec the campaign was last run with;
//! * `results.jsonl` — the append-only record log, one
//!   [`JobRecord`] per line, flushed after every job.
//!
//! Resumability is hash-based: before running, the grid is expanded and
//! every job whose content hash already appears in the log **with an
//! `ok` record** is skipped. Failed jobs (error / panic / timeout) are
//! retried. Killing the process mid-run loses at most the jobs in
//! flight; lines torn by the kill are ignored on reload.

use crate::exec::execute_job;
use crate::job::{expand, Job};
use crate::pool::{run_pool, Outcome, PoolConfig};
use crate::record::{JobRecord, JobStatus};
use crate::spec::{write_spec, CampaignSpec};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// File name of the record log inside a campaign directory.
pub const RESULTS_FILE: &str = "results.jsonl";
/// File name of the spec copy inside a campaign directory.
pub const SPEC_FILE: &str = "spec.lab";

/// Options for one `run_campaign` invocation.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Overrides the spec's worker count.
    pub workers: Option<usize>,
    /// Prints one progress line per job to stderr.
    pub progress: bool,
    /// When set, append one `lab` record per finished job to the
    /// crash-safe event journal at this directory (the same format the
    /// server writes; see `specs/OBSERVABILITY.md`), so campaign
    /// lifecycles land in the same audit stream as serve traffic.
    pub journal_dir: Option<std::path::PathBuf>,
}

/// What one run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Jobs in the expanded grid.
    pub total: usize,
    /// Jobs skipped because an `ok` record already existed.
    pub skipped: usize,
    /// Jobs executed this run.
    pub executed: usize,
    /// Executed jobs that completed ok.
    pub ok: usize,
    /// Executed jobs that returned an error record.
    pub errors: usize,
    /// Executed jobs that panicked.
    pub panics: usize,
    /// Executed jobs that timed out.
    pub timeouts: usize,
}

/// Campaign progress as recorded on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusSummary {
    /// Campaign name from the stored spec.
    pub name: String,
    /// Jobs in the expanded grid.
    pub total: usize,
    /// Grid jobs with an `ok` record.
    pub completed: usize,
    /// Grid jobs whose latest record is a failure.
    pub failed: usize,
    /// Grid jobs with no record yet.
    pub pending: usize,
    /// Records in the log that are not part of the current grid (e.g.
    /// left over from an earlier, different spec).
    pub stale_records: usize,
}

impl StatusSummary {
    /// True when every grid job has an `ok` record.
    pub fn is_complete(&self) -> bool {
        self.completed == self.total
    }
}

/// Loads every parseable record from a campaign directory's log.
/// Unparseable lines (e.g. torn by a mid-write kill) are skipped.
pub fn load_records(dir: &Path) -> std::io::Result<Vec<JobRecord>> {
    let path = dir.join(RESULTS_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| JobRecord::from_json_line(l).ok())
        .collect())
}

/// Runs `jobs` on the scheduler, streaming one [`JobRecord`] per job to
/// `sink` in completion order. Pool-level failures (panic, timeout)
/// are converted to failure records so the log stays total.
pub fn run_jobs(
    jobs: &[Job],
    workers: usize,
    timeout: Option<Duration>,
    mut sink: impl FnMut(&Job, JobRecord),
) {
    let cfg = PoolConfig { workers, timeout };
    let jobs_owned: Vec<Job> = jobs.to_vec();
    run_pool(
        jobs_owned,
        &cfg,
        |job: Job| execute_job(&job),
        |idx, outcome| {
            let job = &jobs[idx];
            let record = match outcome {
                Outcome::Done(r) => r,
                Outcome::Panicked(msg) => JobRecord::failed(job, JobStatus::Panicked, msg),
                Outcome::TimedOut => {
                    JobRecord::failed(job, JobStatus::TimedOut, "per-job timeout exceeded".into())
                }
            };
            sink(job, record);
        },
    );
}

/// Runs a campaign without touching the filesystem; returns the records
/// in completion order. Used by the experiment harness and tests.
pub fn run_in_memory(spec: &CampaignSpec, workers: usize) -> Vec<JobRecord> {
    let jobs = expand(spec);
    let mut out = Vec::with_capacity(jobs.len());
    run_jobs(&jobs, workers, timeout_of(spec), |_, r| out.push(r));
    out
}

fn timeout_of(spec: &CampaignSpec) -> Option<Duration> {
    (spec.timeout_ms > 0).then(|| Duration::from_millis(spec.timeout_ms))
}

/// Runs (or resumes) a campaign in `dir`: expands the grid, skips jobs
/// already completed ok in the log, executes the rest on the scheduler,
/// and appends one log line per job as it finishes.
pub fn run_campaign(
    spec: &CampaignSpec,
    dir: &Path,
    opts: &RunOptions,
) -> std::io::Result<RunSummary> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(SPEC_FILE), write_spec(spec))?;

    // One read serves both the resume set and the torn-line check.
    let log_path = dir.join(RESULTS_FILE);
    let log_text = match std::fs::read_to_string(&log_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let completed: HashSet<String> = log_text
        .lines()
        .filter_map(|l| JobRecord::from_json_line(l).ok())
        .filter(|r| r.status == JobStatus::Ok)
        .map(|r| r.job_id)
        .collect();

    let jobs = expand(spec);
    let total = jobs.len();
    let to_run: Vec<Job> = jobs
        .into_iter()
        .filter(|j| !completed.contains(&j.id()))
        .collect();
    let mut summary = RunSummary {
        total,
        skipped: total - to_run.len(),
        ..RunSummary::default()
    };

    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)?;
    // A mid-write kill can leave a torn final line with no trailing
    // newline; appending straight after it would corrupt the next
    // record too. Append a lone newline (never truncate-and-rewrite —
    // the log is the resumability state) so only the torn line is lost.
    if !log_text.is_empty() && !log_text.ends_with('\n') {
        log.write_all(b"\n")?;
        log.flush()?;
    }
    let workers = opts.workers.unwrap_or(spec.workers).max(1);
    let progress = opts.progress;
    let n_run = to_run.len();
    let mut io_error: Option<std::io::Error> = None;
    let journal = match &opts.journal_dir {
        None => None,
        Some(dir) => Some(mmlp_obs::Journal::open(mmlp_obs::JournalConfig::new(dir))?.0),
    };

    run_jobs(&to_run, workers, timeout_of(spec), |job, record| {
        match record.status {
            JobStatus::Ok => summary.ok += 1,
            JobStatus::Error => summary.errors += 1,
            JobStatus::Panicked => summary.panics += 1,
            JobStatus::TimedOut => summary.timeouts += 1,
        }
        summary.executed += 1;
        if progress {
            let r_col = if job.solver.uses_r() {
                format!(" R={}", job.big_r)
            } else {
                String::new()
            };
            eprintln!(
                "[{}/{}] {} {:>9.1}ms  {} size={} seed={}{} {}",
                summary.executed,
                n_run,
                record.status.name(),
                record.wall_ms,
                job.family,
                job.size,
                job.seed,
                r_col,
                job.solver.name(),
            );
        }
        if let Some(j) = &journal {
            j.emit(mmlp_obs::JournalRecord {
                kind: mmlp_obs::journal::EV_LAB,
                trace_id: 0,
                text: format!(
                    "lab job {}: family={} size={} seed={} solver={} R={} wall_ms={:.1}",
                    record.status.name(),
                    job.family,
                    job.size,
                    job.seed,
                    job.solver.name(),
                    job.big_r,
                    record.wall_ms
                ),
            });
        }
        let line = record.to_json_line();
        if let Err(e) = writeln!(log, "{line}").and_then(|()| log.flush()) {
            io_error.get_or_insert(e);
        }
    });

    match io_error {
        Some(e) => Err(e),
        None => Ok(summary),
    }
}

/// Reads a campaign directory's stored spec and log into a status view.
pub fn status(dir: &Path) -> std::io::Result<StatusSummary> {
    let spec_text = std::fs::read_to_string(dir.join(SPEC_FILE))?;
    let spec = crate::spec::parse_spec(&spec_text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let records = load_records(dir)?;
    let grid: Vec<String> = expand(&spec).iter().map(Job::id).collect();
    let grid_set: HashSet<&String> = grid.iter().collect();

    let mut ok_ids = HashSet::new();
    let mut failed_ids = HashSet::new();
    let mut stale = 0usize;
    for r in &records {
        if !grid_set.contains(&r.job_id) {
            stale += 1;
            continue;
        }
        // The latest record for a job wins (retries append).
        if r.status == JobStatus::Ok {
            ok_ids.insert(r.job_id.clone());
            failed_ids.remove(&r.job_id);
        } else if !ok_ids.contains(&r.job_id) {
            failed_ids.insert(r.job_id.clone());
        }
    }
    let completed = ok_ids.len();
    let failed = failed_ids.len();
    Ok(StatusSummary {
        name: spec.name,
        total: grid.len(),
        completed,
        failed,
        pending: grid.len() - completed - failed,
        stale_records: stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SolverKind;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            families: vec!["cycle".into(), "random-3x3".into()],
            sizes: vec![8, 12],
            seeds: vec![0, 1, 2],
            rs: vec![2, 3],
            solvers: vec![SolverKind::Local, SolverKind::Safe],
            timeout_ms: 0,
            workers: 4,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-lab-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_run_covers_the_grid() {
        let spec = tiny_spec();
        let records = run_in_memory(&spec, 4);
        // 2 fam × 2 sizes × 3 seeds × (local × 2R + safe) = 36.
        assert_eq!(records.len(), 36);
        assert!(records.iter().all(|r| r.status == JobStatus::Ok));
        assert!(records
            .iter()
            .all(|r| r.ratio <= r.guarantee + 1e-6 && r.ratio >= 1.0 - 1e-9));
    }

    #[test]
    fn rerun_skips_every_completed_job() {
        let spec = tiny_spec();
        let dir = temp_dir("rerun");
        let opts = RunOptions::default();
        let first = run_campaign(&spec, &dir, &opts).unwrap();
        assert_eq!(first.executed, 36);
        assert_eq!(first.ok, 36);
        assert_eq!(first.skipped, 0);

        let second = run_campaign(&spec, &dir, &opts).unwrap();
        assert_eq!(second.skipped, 36, "every job resumes as complete");
        assert_eq!(second.executed, 0);

        let st = status(&dir).unwrap();
        assert!(st.is_complete());
        assert_eq!(st.total, 36);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_run_resumes_from_the_log() {
        let spec = tiny_spec();
        let dir = temp_dir("resume");
        run_campaign(&spec, &dir, &RunOptions::default()).unwrap();

        // Simulate a mid-run kill: keep 20 complete lines and one torn
        // line (a partial write at the moment of death).
        let log_path = dir.join(RESULTS_FILE);
        let text = std::fs::read_to_string(&log_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut truncated: String = lines[..20].join("\n");
        truncated.push('\n');
        truncated.push_str(&lines[20][..lines[20].len() / 2]);
        std::fs::write(&log_path, &truncated).unwrap();

        let st = status(&dir).unwrap();
        assert_eq!(st.completed, 20);
        assert_eq!(st.pending, 16);

        let resumed = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        assert_eq!(resumed.skipped, 20, "completed jobs are not redone");
        assert_eq!(resumed.executed, 16);
        assert!(status(&dir).unwrap().is_complete());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journaled_run_records_every_job_lifecycle() {
        let spec = tiny_spec();
        let dir = temp_dir("journal");
        let jdir = dir.join("journal");
        let opts = RunOptions {
            journal_dir: Some(jdir.clone()),
            ..RunOptions::default()
        };
        let run = run_campaign(&spec, &dir, &opts).unwrap();
        assert_eq!(run.executed, 36);
        let (records, report) = mmlp_obs::journal::read_journal_dir(&jdir).unwrap();
        assert_eq!(report.corrupt, 0);
        assert_eq!(records.len(), 36, "one lab record per executed job");
        assert!(records
            .iter()
            .all(|r| r.kind == mmlp_obs::journal::EV_LAB && r.text.starts_with("lab job ok:")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn growing_the_spec_only_runs_the_new_cells() {
        let mut spec = tiny_spec();
        let dir = temp_dir("grow");
        run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        spec.seeds.push(3);
        let run = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        assert_eq!(run.skipped, 36);
        assert_eq!(
            run.executed, 12,
            "one new seed × 2 fam × 2 sizes × 3 variants"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_jobs_are_recorded_and_retried() {
        let spec = CampaignSpec {
            families: vec!["cycle".into(), "does-not-exist".into()],
            sizes: vec![8],
            seeds: vec![0],
            rs: vec![2],
            solvers: vec![SolverKind::Local],
            timeout_ms: 0,
            ..CampaignSpec::default()
        };
        let dir = temp_dir("fail");
        let run = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        assert_eq!(run.ok, 1);
        assert_eq!(run.errors, 1);
        let st = status(&dir).unwrap();
        assert_eq!(st.failed, 1);
        assert_eq!(st.pending, 0);

        // A failure is not "completed": the rerun retries it.
        let rerun = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        assert_eq!(rerun.skipped, 1);
        assert_eq!(rerun.executed, 1);
        assert_eq!(rerun.errors, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeouts_surface_as_records() {
        // A 1 ms budget on a non-trivial job: must come back TimedOut,
        // not hang or crash.
        let spec = CampaignSpec {
            families: vec!["sensor-grid".into()],
            sizes: vec![180],
            seeds: vec![0],
            rs: vec![3],
            solvers: vec![SolverKind::Local],
            timeout_ms: 1,
            ..CampaignSpec::default()
        };
        let records = run_in_memory(&spec, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].status, JobStatus::TimedOut);
    }
}
