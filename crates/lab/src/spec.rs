//! The declarative campaign spec and its line-oriented text format.
//!
//! ```text
//! # comments and blank lines are ignored
//! mmlplab 1
//! name smoke                  # optional campaign name
//! families cycle bandwidth    # ≥ 1 generator families (gen::catalog names)
//! sizes 12 24                 # ≥ 1 instance sizes
//! seeds 0 1 2                 # ≥ 1 seeds
//! R 2 3                       # ≥ 1 locality parameters (each ≥ 2)
//! solvers local safe          # ≥ 1 of: local safe exact distributed mutating
//! timeout_ms 60000            # optional per-job timeout (0 = none)
//! workers 4                   # optional scheduler thread count
//! ```
//!
//! Directives may repeat; list directives append. The format follows
//! the `mmlp_instance::textfmt` idiom (versioned header, `#` comments,
//! whitespace-separated tokens) so specs stay hand-editable and
//! diffable without serde.

use crate::job::SolverKind;
use std::fmt::Write as _;

/// A declarative grid of experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Human-readable campaign name (used in reports; may be empty).
    pub name: String,
    /// Generator family names from `mmlp_gen::catalog`.
    pub families: Vec<String>,
    /// Instance sizes passed to `Family::instance`.
    pub sizes: Vec<usize>,
    /// Generator seeds.
    pub seeds: Vec<u64>,
    /// Locality parameters `R ≥ 2` (applied to R-sensitive solvers).
    pub rs: Vec<usize>,
    /// Solver variants to run on every grid point.
    pub solvers: Vec<SolverKind>,
    /// Per-job timeout in milliseconds (`0` disables the timeout).
    pub timeout_ms: u64,
    /// Default scheduler worker-thread count.
    pub workers: usize,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            name: String::new(),
            families: Vec::new(),
            sizes: Vec::new(),
            seeds: Vec::new(),
            rs: Vec::new(),
            solvers: Vec::new(),
            timeout_ms: 120_000,
            workers: 4,
        }
    }
}

/// Spec parse/validation error with 1-based line number (0 = global).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line of the offending input, 0 for whole-spec errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

impl CampaignSpec {
    /// Checks the spec is runnable: every list non-empty, `R ≥ 2`, a
    /// positive worker count, and every family known to `known_families`
    /// (pass the names from `mmlp_gen::catalog`).
    pub fn validate(&self, known_families: &[&str]) -> Result<(), SpecError> {
        let global = |message: String| SpecError { line: 0, message };
        if self.families.is_empty() {
            return Err(global("spec lists no families".into()));
        }
        if self.sizes.is_empty() {
            return Err(global("spec lists no sizes".into()));
        }
        if self.seeds.is_empty() {
            return Err(global("spec lists no seeds".into()));
        }
        if self.rs.is_empty() {
            return Err(global("spec lists no R values".into()));
        }
        if self.solvers.is_empty() {
            return Err(global("spec lists no solvers".into()));
        }
        if let Some(r) = self.rs.iter().find(|r| **r < 2) {
            return Err(global(format!(
                "R = {r} is below the paper's minimum R = 2"
            )));
        }
        if self.workers == 0 {
            return Err(global("workers must be ≥ 1".into()));
        }
        if let Some(s) = self.sizes.iter().find(|s| **s == 0) {
            return Err(global(format!("size {s} must be positive")));
        }
        for fam in &self.families {
            if !known_families.contains(&fam.as_str()) {
                return Err(global(format!(
                    "unknown family '{fam}' (known: {})",
                    known_families.join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Serialises a spec to the text format (canonical directive order).
pub fn write_spec(spec: &CampaignSpec) -> String {
    let mut out = String::from("mmlplab 1\n");
    if !spec.name.is_empty() {
        let _ = writeln!(out, "name {}", spec.name);
    }
    let join = |xs: &[String]| xs.join(" ");
    let _ = writeln!(out, "families {}", join(&spec.families));
    let _ = writeln!(
        out,
        "sizes {}",
        join(&spec.sizes.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    );
    let _ = writeln!(
        out,
        "seeds {}",
        join(&spec.seeds.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    );
    let _ = writeln!(
        out,
        "R {}",
        join(&spec.rs.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    );
    let _ = writeln!(
        out,
        "solvers {}",
        join(
            &spec
                .solvers
                .iter()
                .map(|s| s.name().to_string())
                .collect::<Vec<_>>()
        )
    );
    let _ = writeln!(out, "timeout_ms {}", spec.timeout_ms);
    let _ = writeln!(out, "workers {}", spec.workers);
    out
}

/// Parses the text format back into a spec (structure only — call
/// [`CampaignSpec::validate`] before running).
pub fn parse_spec(text: &str) -> Result<CampaignSpec, SpecError> {
    let mut spec = CampaignSpec::default();
    let mut saw_header = false;
    let err = |line: usize, message: String| SpecError { line, message };

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_ascii_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        if head == "mmlplab" {
            let version = tokens
                .next()
                .ok_or_else(|| err(lineno, "missing format version".into()))?;
            if version != "1" {
                return Err(err(lineno, format!("unsupported version {version}")));
            }
            saw_header = true;
            continue;
        }
        if !saw_header {
            return Err(err(lineno, "missing 'mmlplab 1' header".into()));
        }
        match head {
            "name" => {
                spec.name = tokens.collect::<Vec<_>>().join(" ");
            }
            "families" => {
                spec.families.extend(tokens.map(str::to_string));
            }
            "sizes" => {
                for t in tokens {
                    spec.sizes.push(
                        t.parse()
                            .map_err(|e| err(lineno, format!("bad size '{t}': {e}")))?,
                    );
                }
            }
            "seeds" => {
                for t in tokens {
                    spec.seeds.push(
                        t.parse()
                            .map_err(|e| err(lineno, format!("bad seed '{t}': {e}")))?,
                    );
                }
            }
            "R" => {
                for t in tokens {
                    spec.rs.push(
                        t.parse()
                            .map_err(|e| err(lineno, format!("bad R '{t}': {e}")))?,
                    );
                }
            }
            "solvers" => {
                for t in tokens {
                    spec.solvers.push(
                        SolverKind::from_name(t)
                            .ok_or_else(|| err(lineno, format!("unknown solver '{t}'")))?,
                    );
                }
            }
            "timeout_ms" => {
                let t = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing timeout value".into()))?;
                spec.timeout_ms = t
                    .parse()
                    .map_err(|e| err(lineno, format!("bad timeout '{t}': {e}")))?;
            }
            "workers" => {
                let t = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing worker count".into()))?;
                spec.workers = t
                    .parse()
                    .map_err(|e| err(lineno, format!("bad worker count '{t}': {e}")))?;
            }
            other => {
                return Err(err(lineno, format!("unknown directive '{other}'")));
            }
        }
    }

    if !saw_header {
        return Err(err(0, "no 'mmlplab 1' header found".into()));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignSpec {
        CampaignSpec {
            name: "smoke".into(),
            families: vec!["cycle".into(), "bandwidth".into()],
            sizes: vec![12, 24],
            seeds: vec![0, 1, 2],
            rs: vec![2, 3],
            solvers: vec![SolverKind::Local, SolverKind::Safe],
            timeout_ms: 60_000,
            workers: 4,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let spec = sample();
        let text = write_spec(&spec);
        let back = parse_spec(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(write_spec(&back), text);
    }

    #[test]
    fn repeated_directives_append() {
        let text = "mmlplab 1\nfamilies cycle\nfamilies bandwidth\nsizes 8\nsizes 16\n\
                    seeds 0\nR 2\nsolvers local\n";
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.families, vec!["cycle", "bandwidth"]);
        assert_eq!(spec.sizes, vec![8, 16]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a campaign\nmmlplab 1\n\nfamilies cycle # inline\nsizes 8\nseeds 0\nR 2\nsolvers local\n";
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.families, vec!["cycle"]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_spec("").is_err(), "no header");
        assert!(parse_spec("mmlplab 2\n").is_err(), "bad version");
        assert!(
            parse_spec("families cycle\nmmlplab 1\n").is_err(),
            "body before header"
        );
        assert!(parse_spec("mmlplab 1\nsizes nope\n").is_err(), "bad size");
        assert!(
            parse_spec("mmlplab 1\nsolvers quantum\n").is_err(),
            "bad solver"
        );
        assert!(
            parse_spec("mmlplab 1\nfrobnicate 1\n").is_err(),
            "bad directive"
        );
        let e = parse_spec("mmlplab 1\nR two\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn validate_checks_grid_and_families() {
        let known = ["cycle", "bandwidth"];
        assert!(sample().validate(&known).is_ok());
        let mut s = sample();
        s.rs = vec![1];
        assert!(s.validate(&known).is_err(), "R < 2");
        let mut s = sample();
        s.families = vec!["no-such".into()];
        assert!(s.validate(&known).is_err(), "unknown family");
        let mut s = sample();
        s.solvers.clear();
        assert!(s.validate(&known).is_err(), "no solvers");
        let mut s = sample();
        s.workers = 0;
        assert!(s.validate(&known).is_err(), "zero workers");
        let mut s = sample();
        s.sizes = vec![0];
        assert!(s.validate(&known).is_err(), "zero size");
    }
}
