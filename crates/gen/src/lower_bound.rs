//! The tight instance family behind the inapproximability side of
//! Theorem 1 (`no local algorithm beats ΔI (1 − 1/ΔK)`).
//!
//! Both members are bipartite max-min LPs with {0,1} coefficients — the
//! class for which the lower bound already holds (Floréen et al.,
//! Algosensors 2008):
//!
//! * [`regular_gadget`] — the incidence instance of a random
//!   `(d, ΔI)`-biregular bipartite *structure graph* `B`: one objective
//!   per degree-`d` left node, one constraint per degree-`ΔI` right node,
//!   one agent per incidence. A global averaging argument pins its
//!   optimum at exactly `d/ΔI`: summing all objective rows counts every
//!   agent once and groups them by constraint, so
//!   `N_K · ω ≤ Σ_k ω_k(x) = Σ_i Σ_{v∈Vi} x_v ≤ N_I = N_K·d/ΔI`,
//!   while `x ≡ 1/ΔI` attains it.
//! * [`tree_gadget`] — a depth-limited chunk of the *unfolding* of that
//!   structure: the same local structure, but tree-shaped. Setting every
//!   "parent-side" agent to 0 and every "child-side" agent to 1 is
//!   feasible and gives every objective value ≥ `d − 1`, so its optimum
//!   is at least `d − 1`.
//!
//! Interior nodes of both instances have isomorphic local views up to
//! radius ~`girth(B)` (verified mechanically by `mmlp-core::unfold`), yet
//! the optima differ by a factor approaching
//! `(d−1)/(d/ΔI) = ΔI(1 − 1/ΔK)` for large `d`... exactly the paper's
//! threshold with `ΔK = d`. A local algorithm must emit the same outputs
//! on matching views, so it cannot be near-optimal on both instances —
//! the experiment `t5` measures this.

use mmlp_instance::{AgentId, Instance, InstanceBuilder, Solution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random `(d, delta_i)`-biregular bipartite structure graph on
/// `n_left` left nodes (degree `d`) and `n_left·d/delta_i` right nodes
/// (degree `delta_i`), as an edge list, with girth improved towards
/// `min_girth` by degree-preserving swaps. Returns `(edges, girth)`.
///
/// `n_left · d` must be divisible by `delta_i`.
pub fn random_biregular(
    n_left: usize,
    d: usize,
    delta_i: usize,
    min_girth: u32,
    seed: u64,
) -> (Vec<(u32, u32)>, u32) {
    assert!(d >= 2 && delta_i >= 2);
    assert_eq!((n_left * d) % delta_i, 0, "degrees must balance");
    let n_right = n_left * d / delta_i;
    let mut rng = StdRng::seed_from_u64(seed);

    'restart: for _ in 0..1000 {
        // Configuration model on stubs.
        let mut right_stubs: Vec<u32> = (0..n_right as u32)
            .flat_map(|i| std::iter::repeat_n(i, delta_i))
            .collect();
        // Fisher–Yates.
        for idx in (1..right_stubs.len()).rev() {
            let j = rng.gen_range(0..=idx);
            right_stubs.swap(idx, j);
        }
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n_left * d);
        let mut seen = std::collections::HashSet::with_capacity(n_left * d);
        for (s, &i) in right_stubs.iter().enumerate() {
            let k = (s / d) as u32;
            if !seen.insert((k, i)) {
                continue 'restart; // multi-edge
            }
            edges.push((k, i));
        }
        if !biregular_connected(n_left, n_right, &edges) {
            continue 'restart;
        }
        let girth = improve_biregular_girth(n_left, n_right, &mut edges, min_girth, &mut rng);
        return (edges, girth);
    }
    panic!("failed to sample a connected ({d},{delta_i})-biregular graph on {n_left} left nodes");
}

fn biregular_adj(n_left: usize, n_right: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
    // Unified indexing: left nodes 0..n_left, right nodes n_left..n_left+n_right.
    let mut adj = vec![Vec::new(); n_left + n_right];
    for &(k, i) in edges {
        adj[k as usize].push(n_left as u32 + i);
        adj[n_left + i as usize].push(k);
    }
    adj
}

fn biregular_connected(n_left: usize, n_right: usize, edges: &[(u32, u32)]) -> bool {
    let adj = biregular_adj(n_left, n_right, edges);
    let total = n_left + n_right;
    if total == 0 {
        return true;
    }
    let mut seen = vec![false; total];
    let mut stack = vec![0u32];
    seen[0] = true;
    let mut count = 1;
    while let Some(x) = stack.pop() {
        for &y in &adj[x as usize] {
            if !seen[y as usize] {
                seen[y as usize] = true;
                count += 1;
                stack.push(y);
            }
        }
    }
    count == total
}

fn biregular_girth(n_left: usize, n_right: usize, edges: &[(u32, u32)]) -> u32 {
    let adj = biregular_adj(n_left, n_right, edges);
    let total = n_left + n_right;
    let mut best = u32::MAX;
    let mut dist = vec![u32::MAX; total];
    let mut parent = vec![u32::MAX; total];
    let mut queue: Vec<u32> = Vec::new();
    for s in 0..total as u32 {
        for &x in &queue {
            dist[x as usize] = u32::MAX;
            parent[x as usize] = u32::MAX;
        }
        queue.clear();
        dist[s as usize] = 0;
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            if 2 * dist[x as usize] + 1 >= best {
                break;
            }
            for &y in &adj[x as usize] {
                if y == parent[x as usize] {
                    continue;
                }
                if dist[y as usize] == u32::MAX {
                    dist[y as usize] = dist[x as usize] + 1;
                    parent[y as usize] = x;
                    queue.push(y);
                } else {
                    best = best.min(dist[x as usize] + dist[y as usize] + 1);
                }
            }
        }
        if best <= 4 {
            break;
        }
    }
    best
}

fn improve_biregular_girth(
    n_left: usize,
    n_right: usize,
    edges: &mut Vec<(u32, u32)>,
    min_girth: u32,
    rng: &mut StdRng,
) -> u32 {
    let mut girth = biregular_girth(n_left, n_right, edges);
    let budget = 200 * edges.len().max(1);
    let mut tries = 0;
    while girth < min_girth && tries < budget {
        tries += 1;
        let a = rng.gen_range(0..edges.len());
        let b = rng.gen_range(0..edges.len());
        if a == b {
            continue;
        }
        let (k1, i1) = edges[a];
        let (k2, i2) = edges[b];
        let (n1, n2) = ((k1, i2), (k2, i1));
        if n1 == n2 || edges.iter().any(|&e| e == n1 || e == n2) {
            continue;
        }
        let mut cand = edges.clone();
        cand[a] = n1;
        cand[b] = n2;
        if !biregular_connected(n_left, n_right, &cand) {
            continue;
        }
        let g = biregular_girth(n_left, n_right, &cand);
        if g > girth {
            *edges = cand;
            girth = g;
        }
    }
    girth
}

/// Builds the incidence instance of a biregular structure graph: one
/// objective per left node, one constraint per right node, one agent per
/// edge, all coefficients 1. Returns the instance and the structure
/// girth achieved (instance girth is twice that — each structure edge
/// becomes a length-2 path through its agent).
pub fn regular_gadget(
    n_objectives: usize,
    d: usize,
    delta_i: usize,
    min_girth: u32,
    seed: u64,
) -> (Instance, u32) {
    let (edges, girth) = random_biregular(n_objectives, d, delta_i, min_girth, seed);
    let n_constraints = n_objectives * d / delta_i;
    let mut b = InstanceBuilder::with_agents(edges.len());
    let mut obj_rows: Vec<Vec<(AgentId, f64)>> = vec![Vec::new(); n_objectives];
    let mut cons_rows: Vec<Vec<(AgentId, f64)>> = vec![Vec::new(); n_constraints];
    for (a, &(k, i)) in edges.iter().enumerate() {
        let agent = AgentId::new(a as u32);
        obj_rows[k as usize].push((agent, 1.0));
        cons_rows[i as usize].push((agent, 1.0));
    }
    for row in &cons_rows {
        b.add_constraint(row).expect("biregular row");
    }
    for row in &obj_rows {
        b.add_objective(row).expect("biregular row");
    }
    (b.build().expect("gadget builds"), girth)
}

/// The exact optimum of [`regular_gadget`] instances: `d / ΔI`
/// (averaging upper bound; attained by `x ≡ 1/ΔI`).
pub fn regular_gadget_optimum(d: usize, delta_i: usize) -> f64 {
    d as f64 / delta_i as f64
}

/// Depth-limited unfolding chunk of the biregular structure, with the
/// feasible witness (child-side agents 1, parent-side agents 0) whose
/// utility is `d − 1`.
///
/// Tree shape: the root objective has `d` child constraints; every other
/// objective has one parent constraint and `d − 1` child constraints;
/// every constraint has one parent agent (an agent of its parent
/// objective) and `ΔI − 1` child objectives, except the cut: constraints
/// at the deepest level keep only their parent agent (`|Vi| = 1` — the
/// "relaxed" leaf constraints). `depth` counts objective levels, so
/// `depth = 0` is a single objective with `d` leaf constraints.
pub fn tree_gadget(d: usize, delta_i: usize, depth: usize) -> (Instance, Solution) {
    assert!(d >= 2 && delta_i >= 2);
    let mut b = InstanceBuilder::new();
    let mut cons_rows: Vec<Vec<(AgentId, f64)>> = Vec::new();
    let mut obj_rows: Vec<Vec<(AgentId, f64)>> = Vec::new();
    let mut child_side: Vec<AgentId> = Vec::new();

    // Frontier of objectives to expand: (objective row index, level,
    // parent agent if any).
    struct Pending {
        row: usize,
        level: usize,
        parent_agent: Option<AgentId>,
    }
    obj_rows.push(Vec::new());
    let mut frontier = vec![Pending {
        row: 0,
        level: 0,
        parent_agent: None,
    }];

    while let Some(p) = frontier.pop() {
        if let Some(a) = p.parent_agent {
            obj_rows[p.row].push((a, 1.0));
        }
        let n_children = if p.level == 0 { d } else { d - 1 };
        for _ in 0..n_children {
            // Child constraint with its parent agent (child-side of this
            // objective).
            let a = b.add_agent();
            child_side.push(a);
            obj_rows[p.row].push((a, 1.0));
            let mut cons = vec![(a, 1.0)];
            if p.level < depth {
                for _ in 0..delta_i - 1 {
                    // Grandchild objective hanging off this constraint via
                    // a fresh parent-side agent.
                    let pa = b.add_agent();
                    cons.push((pa, 1.0));
                    obj_rows.push(Vec::new());
                    frontier.push(Pending {
                        row: obj_rows.len() - 1,
                        level: p.level + 1,
                        parent_agent: Some(pa),
                    });
                }
            }
            cons_rows.push(cons);
        }
    }

    for row in &cons_rows {
        b.add_constraint(row).expect("tree row");
    }
    for row in &obj_rows {
        b.add_objective(row).expect("tree row");
    }
    let inst = b.build().expect("tree gadget builds");
    let mut witness = Solution::zeros(inst.n_agents());
    for &a in &child_side {
        *witness.value_mut(a) = 1.0;
    }
    (inst, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::{validate, CommGraph, DegreeStats};

    #[test]
    fn regular_gadget_shape_and_uniform_witness() {
        let (inst, girth) = regular_gadget(12, 3, 2, 4, 0);
        validate::check(&inst).expect("clean");
        let s = DegreeStats::of(&inst);
        assert_eq!(s.delta_i, 2);
        assert_eq!(s.min_vi, 2);
        assert_eq!(s.delta_k, 3);
        assert_eq!(s.min_vk, 3);
        assert!(girth >= 4);
        // x = 1/ΔI attains d/ΔI = 3/2.
        let x = Solution::from_vec(vec![0.5; inst.n_agents()]);
        assert!(x.is_feasible(&inst, 1e-12));
        assert!((x.utility(&inst) - regular_gadget_optimum(3, 2)).abs() < 1e-12);
    }

    #[test]
    fn regular_gadget_averaging_upper_bound_logic() {
        // Any feasible x has min_k ω_k ≤ d/ΔI; spot-check with a greedy
        // unbalanced attempt on a small gadget.
        let (inst, _) = regular_gadget(6, 3, 2, 4, 1);
        let mut x = Solution::zeros(inst.n_agents());
        // Saturate arbitrary agents greedily.
        for v in inst.agents() {
            let room = inst
                .agent_constraints(v)
                .iter()
                .map(|e| {
                    let used: f64 = inst
                        .constraint_row(e.cons)
                        .iter()
                        .map(|w| w.coef * x.value(w.agent))
                        .sum();
                    (1.0 - used) / e.coef
                })
                .fold(f64::INFINITY, f64::min);
            *x.value_mut(v) = room.max(0.0);
        }
        assert!(x.is_feasible(&inst, 1e-9));
        assert!(x.utility(&inst) <= 1.5 + 1e-9);
    }

    #[test]
    fn regular_gadget_instance_girth_is_twice_structure_girth() {
        let (inst, girth) = regular_gadget(12, 3, 2, 5, 3);
        let g = CommGraph::new(&inst);
        assert_eq!(g.girth(), Some(2 * girth));
    }

    #[test]
    fn regular_gadget_delta_i_three() {
        let (inst, _) = regular_gadget(8, 3, 3, 4, 5);
        validate::check(&inst).expect("clean");
        let s = DegreeStats::of(&inst);
        assert_eq!(s.delta_i, 3);
        assert_eq!(s.delta_k, 3);
        let x = Solution::from_vec(vec![1.0 / 3.0; inst.n_agents()]);
        assert!(x.is_feasible(&inst, 1e-12));
        assert!((x.utility(&inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_gadget_witness_reaches_d_minus_one() {
        for (d, di, depth) in [(3, 2, 3), (4, 2, 2), (3, 3, 2)] {
            let (inst, w) = tree_gadget(d, di, depth);
            validate::check(&inst).expect("clean");
            assert!(
                w.is_feasible(&inst, 1e-12),
                "witness feasible for d={d} ΔI={di}"
            );
            assert!(
                w.utility(&inst) >= (d - 1) as f64 - 1e-12,
                "utility {} < d-1 for d={d}",
                w.utility(&inst)
            );
        }
    }

    #[test]
    fn tree_gadget_is_a_tree() {
        let (inst, _) = tree_gadget(3, 2, 3);
        let g = CommGraph::new(&inst);
        assert_eq!(g.girth(), None, "unfolding chunks are trees");
        let (_, comps) = g.components();
        assert_eq!(comps, 1);
    }

    #[test]
    fn tree_gadget_root_objective_degree_d() {
        let (inst, _) = tree_gadget(3, 2, 2);
        let s = DegreeStats::of(&inst);
        assert_eq!(s.delta_k, 3, "root has d children (no parent)");
        assert_eq!(s.delta_i, 2);
        assert_eq!(s.min_vi, 1, "cut constraints are singletons");
    }

    #[test]
    fn tree_gadget_depth_zero() {
        let (inst, w) = tree_gadget(3, 2, 0);
        assert_eq!(inst.n_objectives(), 1);
        assert_eq!(inst.n_constraints(), 3);
        assert_eq!(inst.n_agents(), 3);
        assert!((w.utility(&inst) - 3.0).abs() < 1e-12, "root keeps all d");
    }

    #[test]
    fn biregular_is_deterministic() {
        let (e1, _) = random_biregular(10, 3, 2, 4, 42);
        let (e2, _) = random_biregular(10, 3, 2, 4, 42);
        assert_eq!(e1, e2);
    }

    #[test]
    fn biregular_degrees_balance() {
        let (edges, _) = random_biregular(10, 3, 2, 4, 9);
        let mut left = [0; 10];
        let mut right = [0; 15];
        for &(k, i) in &edges {
            left[k as usize] += 1;
            right[i as usize] += 1;
        }
        assert!(left.iter().all(|&d| d == 3));
        assert!(right.iter().all(|&d| d == 2));
    }
}
