//! A named catalogue of workload families, shared by the test-suite, the
//! criterion benches and the experiment harness so that every table in
//! EXPERIMENTS.md draws from the same distributions.

use crate::apps::{bandwidth_ladder, sensor_grid, BandwidthConfig, SensorGridConfig};
use crate::lower_bound::regular_gadget;
use crate::random::{random_bipartite, random_general, random_zero_one, RandomConfig};
use crate::special::{cycle_special, random_special_form, SpecialFormConfig};
use mmlp_instance::Instance;

/// A named instance family: `make(size, seed)` produces an instance whose
/// node count grows roughly linearly in `size`.
pub struct Family {
    /// Stable identifier used in tables (e.g. `random-3x3`).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// Generator.
    pub make: Box<dyn Fn(usize, u64) -> Instance + Send + Sync>,
}

impl Family {
    /// Generates an instance of roughly `size` agents with `seed`.
    pub fn instance(&self, size: usize, seed: u64) -> Instance {
        (self.make)(size, seed)
    }
}

/// The standard catalogue used across the experiment suite.
pub fn catalog() -> Vec<Family> {
    vec![
        Family {
            name: "random-3x3",
            description: "random general instances, ΔI = ΔK = 3, coefficients in [0.5, 2]",
            make: Box::new(|size, seed| {
                random_general(
                    &RandomConfig {
                        n_agents: size.max(4),
                        n_constraints: (size * 3 / 4).max(2),
                        n_objectives: (size * 5 / 8).max(2),
                        delta_i: 3,
                        delta_k: 3,
                        coef_range: (0.5, 2.0),
                    },
                    seed,
                )
            }),
        },
        Family {
            name: "random-0/1",
            description: "random {0,1}-coefficient instances, ΔI = ΔK = 3",
            make: Box::new(|size, seed| {
                random_zero_one(
                    &RandomConfig {
                        n_agents: size.max(4),
                        n_constraints: (size * 3 / 4).max(2),
                        n_objectives: (size * 5 / 8).max(2),
                        delta_i: 3,
                        delta_k: 3,
                        coef_range: (1.0, 1.0),
                    },
                    seed,
                )
            }),
        },
        Family {
            name: "bipartite-2x3",
            description: "bipartite instances (|Iv| = |Kv| = 1), ΔI = 2, ΔK = 3",
            make: Box::new(|size, seed| {
                random_bipartite((size / 2).max(4), 2, 3, (0.5, 2.0), seed)
            }),
        },
        Family {
            name: "special-form",
            description: "special-form instances (§5 shape), ΔI = 2, ΔK = 3",
            make: Box::new(|size, seed| {
                random_special_form(
                    &SpecialFormConfig {
                        n_objectives: (size * 2 / 5).max(2),
                        delta_k: 3,
                        extra_constraints: size / 4,
                        coef_range: (0.5, 2.0),
                    },
                    seed,
                )
            }),
        },
        Family {
            name: "cycle",
            description: "the 4-periodic agent/constraint/objective cycle (ΔI = ΔK = 2)",
            make: Box::new(|size, _seed| cycle_special((size / 2).max(2), 1.0)),
        },
        Family {
            name: "sensor-grid",
            description: "balanced data gathering on a torus (ΔI = ΔK = 5)",
            make: Box::new(|size, seed| {
                let side = ((size / 5) as f64).sqrt().ceil().max(3.0) as usize;
                sensor_grid(
                    &SensorGridConfig {
                        width: side,
                        height: side,
                        cost_range: (1.0, 2.0),
                    },
                    seed,
                )
            }),
        },
        Family {
            name: "bandwidth",
            description: "fair bandwidth allocation on a two-rail ring (ΔI = 3, ΔK = 2)",
            make: Box::new(|size, seed| {
                bandwidth_ladder(
                    &BandwidthConfig {
                        n_customers: (size / 2).max(4),
                        window: 3,
                        coef_range: (0.8, 1.25),
                    },
                    seed,
                )
            }),
        },
        Family {
            name: "gadget-d3",
            description: "lower-bound incidence gadget, d = 3, ΔI = 2 (optimum 3/2)",
            make: Box::new(|size, seed| {
                // n_objectives·d must divide ΔI = 2: round up to even.
                let n = ((size / 3).max(4) + 1) & !1;
                regular_gadget(n, 3, 2, 6, seed).0
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::validate;

    #[test]
    fn every_family_generates_clean_instances() {
        for fam in catalog() {
            for seed in 0..3 {
                let inst = fam.instance(40, seed);
                validate::check(&inst)
                    .unwrap_or_else(|e| panic!("family {} seed {seed}: {e}", fam.name));
                assert!(inst.n_agents() > 0);
            }
        }
    }

    #[test]
    fn families_scale_with_size() {
        for fam in catalog() {
            let small = fam.instance(24, 0);
            let large = fam.instance(120, 0);
            assert!(
                large.n_agents() > small.n_agents(),
                "family {} does not scale",
                fam.name
            );
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let names: Vec<&str> = catalog().iter().map(|f| f.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
