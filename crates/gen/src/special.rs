//! Instances already in the *special form* of §5 of the paper:
//! `|Vi| = 2`, `|Vk| ≥ 2`, `|Kv| = 1`, `|Iv| ≥ 1`, `c_kv = 1`.
//!
//! The local algorithm's core (`mmlp-core::tree_bound`/`smoothing`)
//! operates on this form; generating it directly lets tests and
//! benchmarks exercise the core without going through the §4
//! transformation pipeline.

use mmlp_instance::{AgentId, Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_special_form`].
#[derive(Clone, Copy, Debug)]
pub struct SpecialFormConfig {
    /// Number of objectives; each gets its own fresh agents.
    pub n_objectives: usize,
    /// Objective sizes are drawn uniformly from `[2, delta_k]`.
    pub delta_k: usize,
    /// Extra random pairwise constraints beyond the connectivity chain
    /// and the per-agent repairs.
    pub extra_constraints: usize,
    /// `a_iv` drawn log-uniformly from this range (objective
    /// coefficients are fixed at 1 by the special form).
    pub coef_range: (f64, f64),
}

impl Default for SpecialFormConfig {
    fn default() -> Self {
        Self {
            n_objectives: 20,
            delta_k: 3,
            extra_constraints: 10,
            coef_range: (0.5, 2.0),
        }
    }
}

fn draw_coef(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    assert!(lo > 0.0 && hi >= lo);
    if lo == hi {
        lo
    } else {
        (rng.gen::<f64>() * (hi.ln() - lo.ln()) + lo.ln()).exp()
    }
}

/// Generates a random special-form instance. Deterministic in `seed`.
///
/// Construction: objective `k` owns `size_k ∈ [2, ΔK]` fresh agents
/// (so `|Kv| = 1` and `c_kv = 1` hold by construction); a chain of
/// degree-2 constraints links consecutive objectives (connectivity);
/// every agent not yet in a constraint is paired with a random agent of
/// the next objective; `extra_constraints` random pairs are added on top.
pub fn random_special_form(cfg: &SpecialFormConfig, seed: u64) -> Instance {
    assert!(cfg.n_objectives >= 2, "need at least two objectives");
    assert!(cfg.delta_k >= 2, "need ΔK ≥ 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new();

    // Create the objectives and their agents.
    let mut members: Vec<Vec<AgentId>> = Vec::with_capacity(cfg.n_objectives);
    for _ in 0..cfg.n_objectives {
        let size = rng.gen_range(2..=cfg.delta_k);
        let agents: Vec<AgentId> = (0..size).map(|_| b.add_agent()).collect();
        let row: Vec<(AgentId, f64)> = agents.iter().map(|&v| (v, 1.0)).collect();
        b.add_objective(&row).expect("fresh agents");
        members.push(agents);
    }
    let n_agents = b.n_agents();
    let mut in_constraint = vec![false; n_agents];

    let pair = |b: &mut InstanceBuilder,
                rng: &mut StdRng,
                u: AgentId,
                v: AgentId,
                in_constraint: &mut [bool]| {
        let cu = draw_coef(rng, cfg.coef_range);
        let cv = draw_coef(rng, cfg.coef_range);
        b.add_constraint(&[(u, cu), (v, cv)]).expect("two agents");
        in_constraint[u.idx()] = true;
        in_constraint[v.idx()] = true;
    };

    // Connectivity chain.
    for k in 1..cfg.n_objectives {
        let u = members[k - 1][rng.gen_range(0..members[k - 1].len())];
        let v = members[k][rng.gen_range(0..members[k].len())];
        pair(&mut b, &mut rng, u, v, &mut in_constraint);
    }

    // Repair |Iv| ≥ 1.
    for k in 0..cfg.n_objectives {
        for idx in 0..members[k].len() {
            let u = members[k][idx];
            if !in_constraint[u.idx()] {
                let other_k = (k + 1) % cfg.n_objectives;
                let v = members[other_k][rng.gen_range(0..members[other_k].len())];
                pair(&mut b, &mut rng, u, v, &mut in_constraint);
            }
        }
    }

    // Extra density.
    for _ in 0..cfg.extra_constraints {
        let u = AgentId::new(rng.gen_range(0..n_agents as u32));
        let mut v = AgentId::new(rng.gen_range(0..n_agents as u32));
        while v == u {
            v = AgentId::new(rng.gen_range(0..n_agents as u32));
        }
        pair(&mut b, &mut rng, u, v, &mut in_constraint);
    }

    b.build().expect("special-form instance builds")
}

/// The 4-periodic cycle instance with `n_objectives` objectives of degree
/// exactly 2 (`ΔK = 2`): around the cycle,
/// `… agent — objective — agent — constraint — agent — objective — …`.
///
/// With unit coefficients the optimum is 1 (every value `1/2`); the
/// communication graph is a single cycle of length `4·n_objectives`,
/// which makes this the canonical fixture for unfolding and
/// view-indistinguishability tests.
pub fn cycle_special(n_objectives: usize, coef: f64) -> Instance {
    assert!(n_objectives >= 2, "need at least two objectives");
    let mut b = InstanceBuilder::new();
    let agents: Vec<AgentId> = (0..2 * n_objectives).map(|_| b.add_agent()).collect();
    for j in 0..n_objectives {
        b.add_objective(&[(agents[2 * j], 1.0), (agents[2 * j + 1], 1.0)])
            .expect("two agents");
    }
    for j in 0..n_objectives {
        let u = agents[2 * j + 1];
        let v = agents[(2 * j + 2) % (2 * n_objectives)];
        b.add_constraint(&[(u, coef), (v, coef)])
            .expect("two agents");
    }
    b.build().expect("cycle builds")
}

/// The open-path variant of [`cycle_special`]: the chain is cut and both
/// end agents are tied by an extra intra-objective constraint so that
/// `|Iv| ≥ 1` holds everywhere. Interior views match the cycle's views —
/// the pair (long cycle, long path) is locally indistinguishable.
pub fn path_special(n_objectives: usize, coef: f64) -> Instance {
    assert!(n_objectives >= 2, "need at least two objectives");
    let mut b = InstanceBuilder::new();
    let agents: Vec<AgentId> = (0..2 * n_objectives).map(|_| b.add_agent()).collect();
    for j in 0..n_objectives {
        b.add_objective(&[(agents[2 * j], 1.0), (agents[2 * j + 1], 1.0)])
            .expect("two agents");
    }
    for j in 0..n_objectives - 1 {
        let u = agents[2 * j + 1];
        let v = agents[2 * j + 2];
        b.add_constraint(&[(u, coef), (v, coef)])
            .expect("two agents");
    }
    // Tie the loose ends inside their own objectives.
    let first = agents[0];
    let second = agents[1];
    b.add_constraint(&[(first, coef), (second, coef)])
        .expect("two agents");
    let last = agents[2 * n_objectives - 1];
    let before = agents[2 * n_objectives - 2];
    b.add_constraint(&[(last, coef), (before, coef)])
        .expect("two agents");
    b.build().expect("path builds")
}

/// Checks the special-form invariants; used by tests and by
/// `mmlp-core::special` as ground truth.
pub fn is_special_form(inst: &Instance) -> bool {
    inst.constraints()
        .all(|i| inst.constraint_row(i).len() == 2)
        && inst.objectives().all(|k| inst.objective_row(k).len() >= 2)
        && inst.agents().all(|v| {
            inst.agent_objectives(v).len() == 1
                && !inst.agent_constraints(v).is_empty()
                && inst.agent_objectives(v)[0].coef == 1.0
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::{validate, CommGraph, DegreeStats};

    #[test]
    fn random_special_form_has_the_special_shape() {
        for seed in 0..10 {
            let inst = random_special_form(&SpecialFormConfig::default(), seed);
            assert!(is_special_form(&inst), "seed {seed}");
            validate::check(&inst).expect("clean");
            let s = DegreeStats::of(&inst);
            assert_eq!(s.delta_i, 2);
            assert!(s.delta_k <= 3);
        }
    }

    #[test]
    fn random_special_form_deterministic() {
        let a = random_special_form(&SpecialFormConfig::default(), 7);
        let b = random_special_form(&SpecialFormConfig::default(), 7);
        assert_eq!(
            mmlp_instance::textfmt::write_instance(&a),
            mmlp_instance::textfmt::write_instance(&b)
        );
    }

    #[test]
    fn cycle_is_one_big_cycle() {
        let inst = cycle_special(5, 1.0);
        assert!(is_special_form(&inst));
        validate::check(&inst).expect("clean");
        let g = CommGraph::new(&inst);
        assert_eq!(g.girth(), Some(20), "4 · n_objectives");
        // Every node has degree exactly 2.
        for x in 0..g.n_nodes() as u32 {
            assert_eq!(g.degree(x), 2);
        }
    }

    #[test]
    fn cycle_optimum_witness() {
        let inst = cycle_special(4, 1.0);
        let x = mmlp_instance::Solution::from_vec(vec![0.5; inst.n_agents()]);
        assert!(x.is_feasible(&inst, 1e-12));
        assert!((x.utility(&inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_is_special_and_clean() {
        let inst = path_special(5, 1.0);
        assert!(is_special_form(&inst));
        validate::check(&inst).expect("clean");
        let g = CommGraph::new(&inst);
        assert_eq!(g.girth(), Some(4), "the end ties create 4-cycles");
    }

    #[test]
    fn non_special_instance_detected() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 1.0), (v2, 1.0)])
            .unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v2, 1.0), (v1, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        assert!(!is_special_form(&inst), "|Vi| = 3 and |Kv1| = 2");
    }
}

/// A *layered cyclic* special-form instance with a known up/down agent
/// partition — the fixture for machine-checking the §6 analysis
/// (layers, shifting strategy, Lemmas 8–10).
///
/// Structure (one **period** `t` of the vertical cycle, `m` objectives
/// wide):
///
/// ```text
/// layer 4t−1 : m up-agents          (one per objective of period t)
/// layer 4t   : m objectives         (1 up-agent + (ΔK−1) down-agents)
/// layer 4t+1 : m·(ΔK−1) down-agents
/// layer 4t+2 : m·(ΔK−1) constraints (down-agent + next period's up-agent)
/// ```
///
/// Every constraint pairs one down-agent of period `t` with one up-agent
/// of period `t+1 (mod periods)` (up-agents absorb `ΔK−1` constraints
/// each), so every constraint has exactly one up- and one down-agent and
/// every objective exactly one up-agent — the partition of §6. Because
/// the layer direction wraps after `periods` periods, a **consistent
/// layer assignment modulo `4R` exists iff `R` divides `periods`**.
///
/// Returns the instance and `is_up` per agent.
pub fn layered_special(
    periods: usize,
    m: usize,
    delta_k: usize,
    coef_range: (f64, f64),
    seed: u64,
) -> (Instance, Vec<bool>) {
    assert!(periods >= 2, "need at least two periods");
    assert!(m >= 1 && delta_k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new();
    let down_per = delta_k - 1;

    // Create all agents period by period: per period, m up-agents then
    // m·(ΔK−1) down-agents.
    let mut ups: Vec<Vec<AgentId>> = Vec::with_capacity(periods);
    let mut downs: Vec<Vec<AgentId>> = Vec::with_capacity(periods);
    let mut is_up = Vec::new();
    for _ in 0..periods {
        let u: Vec<AgentId> = (0..m)
            .map(|_| {
                is_up.push(true);
                b.add_agent()
            })
            .collect();
        let d: Vec<AgentId> = (0..m * down_per)
            .map(|_| {
                is_up.push(false);
                b.add_agent()
            })
            .collect();
        ups.push(u);
        downs.push(d);
    }

    // Objectives of period t: up-agent o + its ΔK−1 down-agents.
    for t in 0..periods {
        for o in 0..m {
            let mut row = vec![(ups[t][o], 1.0)];
            for s in 0..down_per {
                row.push((downs[t][o * down_per + s], 1.0));
            }
            b.add_objective(&row).expect("layered objective");
        }
    }

    // Constraints: down-agent `q` of period t pairs with up-agent
    // `q mod m` of period t+1 (each next-period up-agent takes ΔK−1
    // constraints; a small rotation keeps the graph connected for m>1).
    for t in 0..periods {
        let next = (t + 1) % periods;
        for (q, &w) in downs[t].iter().enumerate() {
            let u = ups[next][(q + t) % m];
            let cw = draw_coef(&mut rng, coef_range);
            let cu = draw_coef(&mut rng, coef_range);
            b.add_constraint(&[(w, cw), (u, cu)])
                .expect("layered constraint");
        }
    }

    (b.build().expect("layered instance builds"), is_up)
}

#[cfg(test)]
mod layered_tests {
    use super::*;
    use mmlp_instance::validate;

    #[test]
    fn layered_is_special_and_clean() {
        for (periods, m, dk) in [(4, 1, 2), (4, 2, 3), (6, 3, 4)] {
            let (inst, is_up) = layered_special(periods, m, dk, (0.5, 2.0), 0);
            assert!(is_special_form(&inst), "p={periods} m={m} dk={dk}");
            validate::check(&inst).expect("clean");
            assert_eq!(is_up.len(), inst.n_agents());
        }
    }

    #[test]
    fn layered_partition_is_valid() {
        let (inst, is_up) = layered_special(4, 2, 3, (1.0, 1.0), 1);
        // Every objective: exactly one up-agent.
        for k in inst.objectives() {
            let ups = inst
                .objective_row(k)
                .iter()
                .filter(|e| is_up[e.agent.idx()])
                .count();
            assert_eq!(ups, 1, "objective {k}");
        }
        // Every constraint: exactly one up- and one down-agent.
        for i in inst.constraints() {
            let row = inst.constraint_row(i);
            assert_eq!(row.len(), 2);
            let ups = row.iter().filter(|e| is_up[e.agent.idx()]).count();
            assert_eq!(ups, 1, "constraint {i}");
        }
    }

    #[test]
    fn layered_deterministic() {
        let (a, _) = layered_special(4, 2, 3, (0.5, 2.0), 9);
        let (b, _) = layered_special(4, 2, 3, (0.5, 2.0), 9);
        assert_eq!(
            mmlp_instance::textfmt::write_instance(&a),
            mmlp_instance::textfmt::write_instance(&b)
        );
    }
}
