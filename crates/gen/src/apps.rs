//! The intro's motivating applications as instance generators.
//!
//! * [`sensor_grid`] — *balanced data gathering* in a wireless sensor
//!   network: every cell of a toroidal grid hosts a sensor whose data can
//!   be relayed through itself or a nearby cell; relays have unit energy
//!   budgets; the objective is to maximise the minimum amount of data
//!   gathered per sensor.
//! * [`bandwidth_ladder`] — *fair bandwidth allocation*: customers on a
//!   ring send along one of two parallel rails of shared links; links
//!   have unit capacity; the objective is to maximise the minimum
//!   bandwidth delivered to any customer.
//!
//! Both produce bounded-degree instances whose ΔI/ΔK are controlled by
//! the topology parameters, matching the paper's setting where a network
//! node is responsible for each variable/constraint/objective.

use mmlp_instance::{AgentId, Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`sensor_grid`].
#[derive(Clone, Copy, Debug)]
pub struct SensorGridConfig {
    /// Grid width (torus).
    pub width: usize,
    /// Grid height (torus).
    pub height: usize,
    /// Relay energy cost per unit of data is drawn from this range
    /// (self-relay always costs the lower bound).
    pub cost_range: (f64, f64),
}

impl Default for SensorGridConfig {
    fn default() -> Self {
        Self {
            width: 6,
            height: 6,
            cost_range: (1.0, 2.0),
        }
    }
}

/// Balanced data gathering on a `width × height` torus.
///
/// One agent per (sensor, relay) pair with relay ∈ {self, N, S, E, W};
/// one energy constraint per relay cell (`ΔI = 5`); one objective per
/// sensor (`ΔK = 5`, unit coefficients). Deterministic in `seed`.
pub fn sensor_grid(cfg: &SensorGridConfig, seed: u64) -> Instance {
    assert!(
        cfg.width >= 3 && cfg.height >= 3,
        "torus needs ≥ 3 cells per side"
    );
    let (w, h) = (cfg.width, cfg.height);
    let cells = w * h;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new();

    // Agent (s, d) for direction d in {self, N, S, E, W}.
    let dirs: [(isize, isize); 5] = [(0, 0), (0, -1), (0, 1), (1, 0), (-1, 0)];
    let agent = |s: usize, d: usize| AgentId::new((s * 5 + d) as u32);
    for _ in 0..cells * 5 {
        b.add_agent();
    }

    let cell = |x: isize, y: isize| -> usize {
        let xm = x.rem_euclid(w as isize) as usize;
        let ym = y.rem_euclid(h as isize) as usize;
        ym * w + xm
    };

    // Energy constraint per relay r: every (s, d) with relay(s, d) = r.
    // Deterministic cost per (s, d) pair.
    let mut costs = vec![0.0f64; cells * 5];
    for s in 0..cells {
        for d in 0..5 {
            costs[s * 5 + d] = if d == 0 {
                cfg.cost_range.0
            } else {
                let (lo, hi) = cfg.cost_range;
                if lo == hi {
                    lo
                } else {
                    (rng.gen::<f64>() * (hi.ln() - lo.ln()) + lo.ln()).exp()
                }
            };
        }
    }
    for r in 0..cells {
        let (rx, ry) = ((r % w) as isize, (r / w) as isize);
        let mut row = Vec::with_capacity(5);
        // The sensor s relaying through r in direction d satisfies
        // s + dir(d) = r, i.e. s = r − dir(d).
        for (d, (dx, dy)) in dirs.iter().enumerate() {
            let s = cell(rx - dx, ry - dy);
            row.push((agent(s, d), costs[s * 5 + d]));
        }
        b.add_constraint(&row).expect("five distinct agents");
    }

    // Objective per sensor: total data shipped, unit coefficients.
    for s in 0..cells {
        let row: Vec<(AgentId, f64)> = (0..5).map(|d| (agent(s, d), 1.0)).collect();
        b.add_objective(&row).expect("five distinct agents");
    }

    b.build().expect("sensor grid builds")
}

/// Parameters for [`bandwidth_ladder`].
#[derive(Clone, Copy, Debug)]
pub struct BandwidthConfig {
    /// Number of customers (and of link positions on the ring).
    pub n_customers: usize,
    /// Window of consecutive links each path occupies; equals the
    /// resulting `ΔI`.
    pub window: usize,
    /// Per-link usage coefficients drawn from this range.
    pub coef_range: (f64, f64),
}

impl Default for BandwidthConfig {
    fn default() -> Self {
        Self {
            n_customers: 24,
            window: 3,
            coef_range: (0.8, 1.25),
        }
    }
}

/// Fair bandwidth allocation on a two-rail ring.
///
/// Customer `j` ships flow `x_{j,upper}` or `x_{j,lower}` along `window`
/// consecutive link positions starting at `j` on the chosen rail; each
/// of the `2·n_customers` links has unit capacity shared by the `window`
/// customers crossing it (`ΔI = window`); each customer's objective sums
/// its two path variables (`ΔK = 2`). Deterministic in `seed`.
pub fn bandwidth_ladder(cfg: &BandwidthConfig, seed: u64) -> Instance {
    let c = cfg.n_customers;
    let w = cfg.window;
    assert!(c >= 3, "ring needs ≥ 3 customers");
    assert!((2..=c).contains(&w), "window must be in [2, n_customers]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new();
    let agent = |j: usize, rail: usize| AgentId::new((j * 2 + rail) as u32);
    for _ in 0..2 * c {
        b.add_agent();
    }

    let coef = |rng: &mut StdRng| {
        let (lo, hi) = cfg.coef_range;
        if lo == hi {
            lo
        } else {
            (rng.gen::<f64>() * (hi.ln() - lo.ln()) + lo.ln()).exp()
        }
    };

    // Link constraint at (rail, position p): customers j with
    // p ∈ {j, …, j+w−1 (mod c)}.
    for rail in 0..2 {
        for p in 0..c {
            let mut row = Vec::with_capacity(w);
            for back in 0..w {
                let j = (p + c - back) % c;
                row.push((agent(j, rail), coef(&mut rng)));
            }
            b.add_constraint(&row)
                .expect("distinct customers in window");
        }
    }

    // Customer objectives.
    for j in 0..c {
        b.add_objective(&[(agent(j, 0), 1.0), (agent(j, 1), 1.0)])
            .expect("two rails");
    }

    b.build().expect("bandwidth ladder builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::{validate, DegreeStats, Solution};

    #[test]
    fn sensor_grid_shape() {
        let inst = sensor_grid(&SensorGridConfig::default(), 0);
        validate::check(&inst).expect("clean");
        assert_eq!(inst.n_agents(), 36 * 5);
        assert_eq!(inst.n_constraints(), 36);
        assert_eq!(inst.n_objectives(), 36);
        let s = DegreeStats::of(&inst);
        assert_eq!(s.delta_i, 5);
        assert_eq!(s.delta_k, 5);
        assert_eq!(s.min_vi, 5);
        assert_eq!(s.max_kv, 1, "each agent serves one sensor");
        assert_eq!(s.max_iv, 1, "each agent loads one relay");
    }

    #[test]
    fn sensor_grid_uniform_routing_is_feasible() {
        let cfg = SensorGridConfig {
            cost_range: (1.0, 1.0),
            ..SensorGridConfig::default()
        };
        let inst = sensor_grid(&cfg, 1);
        // Each relay serves 5 unit-cost agents; x = 1/5 saturates exactly.
        let x = Solution::from_vec(vec![0.2; inst.n_agents()]);
        assert!(x.is_feasible(&inst, 1e-12));
        assert!((x.utility(&inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sensor_grid_deterministic() {
        let a = sensor_grid(&SensorGridConfig::default(), 3);
        let b = sensor_grid(&SensorGridConfig::default(), 3);
        assert_eq!(
            mmlp_instance::textfmt::write_instance(&a),
            mmlp_instance::textfmt::write_instance(&b)
        );
    }

    #[test]
    fn bandwidth_shape() {
        let inst = bandwidth_ladder(&BandwidthConfig::default(), 0);
        validate::check(&inst).expect("clean");
        assert_eq!(inst.n_agents(), 48);
        assert_eq!(inst.n_constraints(), 48);
        assert_eq!(inst.n_objectives(), 24);
        let s = DegreeStats::of(&inst);
        assert_eq!(s.delta_i, 3, "window");
        assert_eq!(s.delta_k, 2, "two rails");
    }

    #[test]
    fn bandwidth_balanced_split_is_feasible() {
        let cfg = BandwidthConfig {
            n_customers: 10,
            window: 2,
            coef_range: (1.0, 1.0),
        };
        let inst = bandwidth_ladder(&cfg, 0);
        // Each link carries `window` = 2 customers: x = 1/2 saturates;
        // every customer then receives 1/2 + 1/2 = 1.
        let x = Solution::from_vec(vec![0.5; inst.n_agents()]);
        assert!(x.is_feasible(&inst, 1e-12));
        assert!((x.utility(&inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_equals_delta_i() {
        for w in 2..=4 {
            let cfg = BandwidthConfig {
                n_customers: 12,
                window: w,
                coef_range: (1.0, 1.0),
            };
            let inst = bandwidth_ladder(&cfg, 0);
            assert_eq!(DegreeStats::of(&inst).delta_i, w);
        }
    }
}
