//! # `mmlp-gen`
//!
//! Seeded workload generators for the max-min LP reproduction.
//!
//! Families:
//!
//! * [`random`] — random bounded-degree general instances (arbitrary
//!   positive coefficients, {0,1} coefficients, bipartite variants).
//! * [`special`] — instances already in the *special form* of §5 of the
//!   paper (`|Vi| = 2`, `|Kv| = 1`, `c_kv = 1`): random trees and the
//!   4-periodic agent/constraint/objective cycles.
//! * [`apps`] — the intro's motivating applications: *balanced data
//!   gathering* on a toroidal sensor grid and *fair bandwidth allocation*
//!   on a ladder of shared links.
//! * [`graphs`] — plain-graph substrate (random regular graphs with girth
//!   improvement, bipartite double covers) used by the lower-bound family
//!   and by the unfolding tests.
//! * [`lower_bound`] — the tight instance family behind the
//!   inapproximability side of Theorem 1: (d, ΔI)-biregular incidence
//!   instances (optimum `d/ΔI` by a global averaging argument) versus
//!   their tree-shaped unfoldings (optimum → `d − 1`); the optimum ratio
//!   approaches `ΔI (1 − 1/ΔK)` while local views coincide.
//!
//! All generators are deterministic in their `seed` and produce instances
//! satisfying the standing assumptions of §4 (validated in tests).

pub mod apps;
pub mod catalog;
pub mod graphs;
pub mod lower_bound;
pub mod random;
pub mod special;

pub use apps::{bandwidth_ladder, sensor_grid, BandwidthConfig, SensorGridConfig};
pub use catalog::{catalog, Family};
pub use lower_bound::{regular_gadget, tree_gadget};
pub use random::{random_bipartite, random_general, random_zero_one, RandomConfig};
pub use special::{cycle_special, random_special_form, SpecialFormConfig};
