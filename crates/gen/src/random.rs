//! Random bounded-degree max-min LP instances.
//!
//! The generator samples constraint and objective rows with degrees in
//! `[2, ΔI]` / `[2, ΔK]`, then repairs the standing assumptions of §4:
//! agents missing a constraint or an objective get a fresh degree-2 row,
//! and connected components are stitched together with degree-2 objective
//! rows (row repairs never violate the row-degree bounds ΔI/ΔK ≥ 2).

use mmlp_instance::{AgentId, DegreeStats, Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_general`].
#[derive(Clone, Copy, Debug)]
pub struct RandomConfig {
    /// Number of agents (variables).
    pub n_agents: usize,
    /// Number of sampled constraint rows (before repairs).
    pub n_constraints: usize,
    /// Number of sampled objective rows (before repairs).
    pub n_objectives: usize,
    /// Maximum agents per constraint, `ΔI ≥ 2`.
    pub delta_i: usize,
    /// Maximum agents per objective, `ΔK ≥ 2`.
    pub delta_k: usize,
    /// Coefficients are drawn log-uniformly from this range; use
    /// `(1.0, 1.0)` for {0,1} matrices.
    pub coef_range: (f64, f64),
}

impl Default for RandomConfig {
    fn default() -> Self {
        Self {
            n_agents: 40,
            n_constraints: 30,
            n_objectives: 25,
            delta_i: 3,
            delta_k: 3,
            coef_range: (0.5, 2.0),
        }
    }
}

fn draw_coef(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "coefficient range must be positive");
    if lo == hi {
        lo
    } else {
        (rng.gen::<f64>() * (hi.ln() - lo.ln()) + lo.ln()).exp()
    }
}

/// Samples `count` distinct agents from `0..n`.
fn sample_agents(rng: &mut StdRng, n: usize, count: usize) -> Vec<AgentId> {
    debug_assert!(count <= n);
    // Floyd's algorithm: O(count) expected, no allocation of 0..n.
    let mut picked = Vec::with_capacity(count);
    for j in n - count..n {
        let t = rng.gen_range(0..=j);
        let t = t as u32;
        if picked.contains(&AgentId::new(t)) {
            picked.push(AgentId::new(j as u32));
        } else {
            picked.push(AgentId::new(t));
        }
    }
    picked
}

/// Generates a random general max-min LP satisfying the standing
/// assumptions (connected, every agent in ≥1 constraint and ≥1
/// objective). Deterministic in `seed`.
pub fn random_general(cfg: &RandomConfig, seed: u64) -> Instance {
    assert!(cfg.delta_i >= 2 && cfg.delta_k >= 2, "need ΔI, ΔK ≥ 2");
    assert!(cfg.n_agents >= 2, "need at least two agents");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.n_agents;
    let mut b = InstanceBuilder::with_agents(n);

    let mut in_constraint = vec![false; n];
    let mut in_objective = vec![false; n];

    // Union-find for connectivity over agents (rows connect their agents).
    let mut uf: Vec<u32> = (0..n as u32).collect();
    fn find(uf: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while uf[r as usize] != r {
            r = uf[r as usize];
        }
        let mut c = x;
        while uf[c as usize] != r {
            let next = uf[c as usize];
            uf[c as usize] = r;
            c = next;
        }
        r
    }
    fn union(uf: &mut [u32], a: u32, c: u32) {
        let (ra, rc) = (find(uf, a), find(uf, c));
        if ra != rc {
            uf[ra as usize] = rc;
        }
    }
    enum RowKind {
        Constraint,
        Objective,
    }
    fn add_row(
        kind: RowKind,
        b: &mut InstanceBuilder,
        rng: &mut StdRng,
        coef_range: (f64, f64),
        agents: &[AgentId],
        membership: &mut [bool],
        uf: &mut [u32],
    ) {
        let row: Vec<(AgentId, f64)> = agents
            .iter()
            .map(|&v| (v, draw_coef(rng, coef_range)))
            .collect();
        match kind {
            RowKind::Constraint => {
                b.add_constraint(&row).expect("valid sampled row");
            }
            RowKind::Objective => {
                b.add_objective(&row).expect("valid sampled row");
            }
        }
        for &v in agents {
            membership[v.idx()] = true;
        }
        for w in agents.windows(2) {
            union(uf, w[0].raw(), w[1].raw());
        }
    }

    for _ in 0..cfg.n_constraints {
        let deg = rng.gen_range(2..=cfg.delta_i.min(n));
        let agents = sample_agents(&mut rng, n, deg);
        add_row(
            RowKind::Constraint,
            &mut b,
            &mut rng,
            cfg.coef_range,
            &agents,
            &mut in_constraint,
            &mut uf,
        );
    }
    for _ in 0..cfg.n_objectives {
        let deg = rng.gen_range(2..=cfg.delta_k.min(n));
        let agents = sample_agents(&mut rng, n, deg);
        add_row(
            RowKind::Objective,
            &mut b,
            &mut rng,
            cfg.coef_range,
            &agents,
            &mut in_objective,
            &mut uf,
        );
    }

    // Repair: every agent needs a constraint (otherwise unbounded) and an
    // objective (otherwise non-contributing).
    for v in 0..n as u32 {
        if !in_constraint[v as usize] {
            let agents = [AgentId::new(v), AgentId::new((v + 1) % n as u32)];
            add_row(
                RowKind::Constraint,
                &mut b,
                &mut rng,
                cfg.coef_range,
                &agents,
                &mut in_constraint,
                &mut uf,
            );
        }
        if !in_objective[v as usize] {
            let agents = [AgentId::new(v), AgentId::new((v + 1) % n as u32)];
            add_row(
                RowKind::Objective,
                &mut b,
                &mut rng,
                cfg.coef_range,
                &agents,
                &mut in_objective,
                &mut uf,
            );
        }
    }

    // Repair: stitch components with degree-2 objective rows.
    let mut reps: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        if find(&mut uf, v) == v {
            reps.push(v);
        }
    }
    for w in reps.windows(2) {
        let agents = [AgentId::new(w[0]), AgentId::new(w[1])];
        add_row(
            RowKind::Objective,
            &mut b,
            &mut rng,
            cfg.coef_range,
            &agents,
            &mut in_objective,
            &mut uf,
        );
    }

    b.build().expect("random instance builds")
}

/// Random instance with all coefficients equal to 1 ({0,1} matrices) —
/// the class for which the paper's inapproximability bound already holds.
pub fn random_zero_one(cfg: &RandomConfig, seed: u64) -> Instance {
    let cfg = RandomConfig {
        coef_range: (1.0, 1.0),
        ..*cfg
    };
    random_general(&cfg, seed)
}

/// Random *bipartite* max-min LP: every agent is adjacent to exactly one
/// constraint and exactly one objective (each column of `A` and of `C`
/// has a single nonzero — the special case studied in prior work \[6,7\]).
///
/// Built as a random (ΔI, ΔK)-"incidence" structure: constraints of
/// degree exactly `delta_i`, objectives of degree ≥ 2, connected.
pub fn random_bipartite(
    n_constraints: usize,
    delta_i: usize,
    delta_k: usize,
    coef_range: (f64, f64),
    seed: u64,
) -> Instance {
    assert!(delta_i >= 2 && delta_k >= 2);
    if (n_constraints * delta_i) % delta_k == 1 {
        assert!(
            bipartite_sizes_ok(n_constraints, delta_i, delta_k),
            "n_constraints·delta_i ≡ 1 (mod delta_k) with delta_k = 2 cannot \
             be partitioned into objectives of size in [2, delta_k]"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Agents: delta_i per constraint; objectives partition the agents
    // into groups of size in [2, delta_k]. Agents are dealt column-major
    // over the (constraint, slot) grid with a random rotation per column,
    // so that objective groups span several constraints and group
    // boundaries in different columns interleave. Boundary alignment
    // across columns can still disconnect the incidence for unlucky
    // rotations, so retry with fresh rotations until connected.
    let n_agents = n_constraints * delta_i;
    let m = n_constraints;
    for _attempt in 0..1000 {
        let rotations: Vec<usize> = (0..delta_i).map(|_| rng.gen_range(0..m)).collect();
        let mut b = InstanceBuilder::with_agents(n_agents);
        for i in 0..n_constraints {
            let row: Vec<(AgentId, f64)> = (0..delta_i)
                .map(|j| {
                    (
                        AgentId::new((i * delta_i + j) as u32),
                        draw_coef(&mut rng, coef_range),
                    )
                })
                .collect();
            b.add_constraint(&row).expect("valid row");
        }
        let mut order: Vec<u32> = (0..n_agents as u32).collect();
        order.sort_by_key(|&a| {
            let i = a as usize / delta_i;
            let j = a as usize % delta_i;
            j * m + (i + rotations[j]) % m
        });
        // Chunk sizes: all delta_k, except that a trailing remainder of 1
        // is avoided by shrinking the penultimate chunk (objectives need
        // ≥ 2 agents; delta_k ≥ 3 is guaranteed by the assert above).
        let mut pos = 0usize;
        while pos < n_agents {
            let remaining = n_agents - pos;
            let size = if remaining == delta_k + 1 && delta_k >= 3 {
                delta_k - 1 // leave 2 for the final objective
            } else {
                remaining.min(delta_k)
            };
            let chunk = &order[pos..pos + size];
            pos += size;
            let row: Vec<(AgentId, f64)> = chunk
                .iter()
                .map(|&a| (AgentId::new(a), draw_coef(&mut rng, coef_range)))
                .collect();
            b.add_objective(&row).expect("valid row");
        }
        let inst = b.build().expect("bipartite instance builds");
        if mmlp_instance::CommGraph::new(&inst).components().1 == 1 {
            return inst;
        }
    }
    panic!(
        "failed to generate a connected bipartite instance \
         ({n_constraints} constraints, ΔI={delta_i}, ΔK={delta_k})"
    )
}

/// Checks that `random_bipartite`'s parameters admit a partition of the
/// agents into objectives of size in `[2, delta_k]`.
pub fn bipartite_sizes_ok(n_constraints: usize, delta_i: usize, delta_k: usize) -> bool {
    (n_constraints * delta_i) % delta_k != 1 || delta_k >= 3
}

/// Degree statistics helper re-exported for workload reporting.
pub fn stats(inst: &Instance) -> DegreeStats {
    DegreeStats::of(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::validate;

    #[test]
    fn random_general_satisfies_standing_assumptions() {
        for seed in 0..10 {
            let inst = random_general(&RandomConfig::default(), seed);
            validate::check(&inst).expect("generated instance is clean");
            let s = DegreeStats::of(&inst);
            assert!(s.delta_i <= 3 && s.delta_k <= 3);
            assert!(s.min_vi >= 2 && s.min_vk >= 2);
        }
    }

    #[test]
    fn random_general_is_deterministic() {
        let a = random_general(&RandomConfig::default(), 5);
        let b = random_general(&RandomConfig::default(), 5);
        assert_eq!(
            mmlp_instance::textfmt::write_instance(&a),
            mmlp_instance::textfmt::write_instance(&b)
        );
    }

    #[test]
    fn seeds_differ() {
        let a = random_general(&RandomConfig::default(), 1);
        let b = random_general(&RandomConfig::default(), 2);
        assert_ne!(
            mmlp_instance::textfmt::write_instance(&a),
            mmlp_instance::textfmt::write_instance(&b)
        );
    }

    #[test]
    fn zero_one_coefficients_are_all_one() {
        let inst = random_zero_one(&RandomConfig::default(), 3);
        for i in inst.constraints() {
            assert!(inst.constraint_row(i).iter().all(|e| e.coef == 1.0));
        }
        for k in inst.objectives() {
            assert!(inst.objective_row(k).iter().all(|e| e.coef == 1.0));
        }
        validate::check(&inst).expect("clean");
    }

    #[test]
    fn bipartite_each_agent_in_one_constraint_one_objective() {
        let inst = random_bipartite(12, 2, 3, (0.5, 2.0), 11);
        validate::check(&inst).expect("clean");
        for v in inst.agents() {
            assert_eq!(inst.agent_constraints(v).len(), 1);
            assert_eq!(inst.agent_objectives(v).len(), 1);
        }
        let s = DegreeStats::of(&inst);
        assert_eq!(s.delta_i, 2);
        assert!(s.delta_k <= 3 && s.min_vk >= 2);
    }

    #[test]
    fn bipartite_with_delta_i_3() {
        let inst = random_bipartite(10, 3, 3, (1.0, 1.0), 4);
        validate::check(&inst).expect("clean");
        let s = DegreeStats::of(&inst);
        assert_eq!(s.delta_i, 3);
        assert_eq!(s.min_vi, 3);
    }

    #[test]
    fn coef_range_respected() {
        let inst = random_general(
            &RandomConfig {
                coef_range: (0.25, 4.0),
                ..RandomConfig::default()
            },
            9,
        );
        for i in inst.constraints() {
            for e in inst.constraint_row(i) {
                assert!(e.coef >= 0.25 - 1e-12 && e.coef <= 4.0 + 1e-12);
            }
        }
    }

    #[test]
    fn tiny_instances_work() {
        let cfg = RandomConfig {
            n_agents: 2,
            n_constraints: 1,
            n_objectives: 1,
            delta_i: 2,
            delta_k: 2,
            coef_range: (1.0, 1.0),
        };
        let inst = random_general(&cfg, 0);
        validate::check(&inst).expect("clean");
        assert_eq!(inst.n_agents(), 2);
    }
}
