//! Plain-graph substrate: random regular graphs (with girth improvement),
//! bipartite double covers, connectivity/bipartiteness/girth checks.
//!
//! These simple graphs are the *objective graphs* from which the
//! lower-bound gadget instances are built, and provide covering-space
//! fixtures for the unfolding machinery tests (§3 of the paper).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An undirected simple graph on `n` vertices.
#[derive(Clone, Debug)]
pub struct SimpleGraph {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl SimpleGraph {
    /// Builds from an edge list; panics on loops, duplicate edges or
    /// out-of-range endpoints (generator bugs should be loud).
    pub fn new(n: usize, mut edges: Vec<(u32, u32)>) -> Self {
        for e in &mut edges {
            assert!(
                (e.0 as usize) < n && (e.1 as usize) < n,
                "endpoint out of range"
            );
            assert_ne!(e.0, e.1, "loops are not allowed");
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate edges are not allowed"
        );
        Self { n, edges }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The edge list (normalised to `u < v`).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        adj
    }

    /// Degree sequence.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    /// Whether the graph is connected (the empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(x) = stack.pop() {
            for &y in &adj[x as usize] {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    count += 1;
                    stack.push(y);
                }
            }
        }
        count == self.n
    }

    /// Whether the graph is bipartite.
    pub fn is_bipartite(&self) -> bool {
        let adj = self.adjacency();
        let mut color = vec![u8::MAX; self.n];
        for s in 0..self.n {
            if color[s] != u8::MAX {
                continue;
            }
            color[s] = 0;
            let mut stack = vec![s as u32];
            while let Some(x) = stack.pop() {
                for &y in &adj[x as usize] {
                    if color[y as usize] == u8::MAX {
                        color[y as usize] = 1 - color[x as usize];
                        stack.push(y);
                    } else if color[y as usize] == color[x as usize] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Girth (length of a shortest cycle), or `None` for a forest.
    pub fn girth(&self) -> Option<u32> {
        let adj = self.adjacency();
        let mut best = u32::MAX;
        let mut dist = vec![u32::MAX; self.n];
        let mut parent = vec![u32::MAX; self.n];
        let mut queue: Vec<u32> = Vec::new();
        for s in 0..self.n as u32 {
            for &x in &queue {
                dist[x as usize] = u32::MAX;
                parent[x as usize] = u32::MAX;
            }
            queue.clear();
            dist[s as usize] = 0;
            queue.push(s);
            let mut head = 0;
            while head < queue.len() {
                let x = queue[head];
                head += 1;
                if 2 * dist[x as usize] + 1 >= best {
                    break;
                }
                for &y in &adj[x as usize] {
                    if y == parent[x as usize] {
                        continue;
                    }
                    if dist[y as usize] == u32::MAX {
                        dist[y as usize] = dist[x as usize] + 1;
                        parent[y as usize] = x;
                        queue.push(y);
                    } else {
                        best = best.min(dist[x as usize] + dist[y as usize] + 1);
                    }
                }
            }
            if best == 3 {
                break;
            }
        }
        (best != u32::MAX).then_some(best)
    }

    /// The bipartite double cover: vertices `(v, 0)` and `(v, 1)`; each
    /// edge `{u,v}` lifts to `{(u,0),(v,1)}` and `{(u,1),(v,0)}`.
    ///
    /// The double cover is always bipartite, covers the base 2-to-1 (so
    /// local views coincide with the base's), and is connected iff the
    /// base is connected and non-bipartite.
    pub fn double_cover(&self) -> SimpleGraph {
        let mut edges = Vec::with_capacity(2 * self.edges.len());
        let n = self.n as u32;
        for &(u, v) in &self.edges {
            edges.push((u, v + n));
            edges.push((v, u + n));
        }
        SimpleGraph::new(2 * self.n, edges)
    }

    /// The cycle `C_n`.
    pub fn cycle(n: usize) -> SimpleGraph {
        assert!(n >= 3, "cycles need at least 3 vertices");
        let edges = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        SimpleGraph::new(n, edges)
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> SimpleGraph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                edges.push((u, v));
            }
        }
        SimpleGraph::new(n, edges)
    }

    /// The Petersen graph (3-regular, girth 5, non-bipartite) — a useful
    /// fixed high-girth fixture.
    pub fn petersen() -> SimpleGraph {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push((i, (i + 1) % 5)); // outer C5
            edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
            edges.push((i, 5 + i)); // spokes
        }
        SimpleGraph::new(10, edges)
    }
}

/// A random `k`-fold **permutation lift** of this graph: vertices
/// `(v, j)` for `j < k`; each base edge `{u, v}` lifts to the matching
/// `{(u, j), (v, π_e(j))}` for a uniformly random permutation `π_e`.
///
/// Every lift covers the base graph, so corresponding vertices have
/// identical local views up to (at least) the lift's girth — the
/// classic way to manufacture larger locally-indistinguishable graphs
/// (§3 of the paper). Girth never decreases under lifts; connectivity
/// is not guaranteed, so sample with retries if needed.
pub fn permutation_lift(base: &SimpleGraph, k: usize, seed: u64) -> SimpleGraph {
    assert!(k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = base.n();
    let mut edges = Vec::with_capacity(base.edges().len() * k);
    for &(u, v) in base.edges() {
        let mut perm: Vec<u32> = (0..k as u32).collect();
        perm.shuffle(&mut rng);
        for (j, &pj) in perm.iter().enumerate() {
            edges.push((u + (j as u32) * n as u32, v + pj * n as u32));
        }
    }
    SimpleGraph::new(n * k, edges)
}

/// Random `d`-regular simple connected graph on `n` vertices via the
/// configuration model with restarts, followed by girth-improving edge
/// swaps towards `min_girth` (best effort; the achieved girth is
/// returned alongside).
///
/// Requires `n·d` even and `n > d`.
pub fn random_regular(n: usize, d: usize, min_girth: u32, seed: u64) -> (SimpleGraph, u32) {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(n > d, "need n > d for a simple d-regular graph");
    let mut rng = StdRng::seed_from_u64(seed);
    'restart: for _attempt in 0..1000 {
        // Pair stubs uniformly.
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if u == v || !seen.insert((u, v)) {
                continue 'restart; // loop or multi-edge: resample
            }
            edges.push((u, v));
        }
        let g = SimpleGraph::new(n, edges);
        if !g.is_connected() {
            continue 'restart;
        }
        let (g, girth) = improve_girth(g, min_girth, &mut rng);
        return (g, girth);
    }
    panic!("failed to sample a connected {d}-regular graph on {n} vertices");
}

/// Degree-preserving edge swaps that lengthen the shortest cycle:
/// repeatedly pick an edge on a shortest cycle and 2-swap it with a
/// random other edge when doing so increases (or preserves, with a
/// budget) the girth. Returns the improved graph and its girth.
///
/// Best effort: regular graphs of very large girth are rare objects and
/// cannot generally be reached by local search; callers must check the
/// achieved girth.
fn improve_girth(g: SimpleGraph, min_girth: u32, rng: &mut StdRng) -> (SimpleGraph, u32) {
    let mut edges = g.edges().to_vec();
    let n = g.n();
    let mut girth = g.girth().unwrap_or(u32::MAX);
    let budget = 200 * edges.len().max(1);
    let mut tries = 0;
    while girth < min_girth && tries < budget {
        tries += 1;
        let a = rng.gen_range(0..edges.len());
        let b = rng.gen_range(0..edges.len());
        if a == b {
            continue;
        }
        let (u1, v1) = edges[a];
        let (u2, v2) = edges[b];
        // Swap to (u1,u2),(v1,v2) or (u1,v2),(v1,u2), chosen at random.
        let (n1, n2) = if rng.gen_bool(0.5) {
            ((u1, u2), (v1, v2))
        } else {
            ((u1, v2), (v1, u2))
        };
        if n1.0 == n1.1 || n2.0 == n2.1 {
            continue;
        }
        let norm = |(x, y): (u32, u32)| if x < y { (x, y) } else { (y, x) };
        let (n1, n2) = (norm(n1), norm(n2));
        if n1 == n2 || edges.iter().any(|&e| e == n1 || e == n2) {
            continue;
        }
        let mut candidate = edges.clone();
        candidate[a] = n1;
        candidate[b] = n2;
        let cg = SimpleGraph::new(n, candidate.clone());
        if !cg.is_connected() {
            continue;
        }
        let new_girth = cg.girth().unwrap_or(u32::MAX);
        // Strict improvements are always taken; equal-girth swaps are
        // taken occasionally (a plateau random walk), which lets the
        // search escape local optima where no single swap lengthens the
        // shortest cycle.
        if new_girth > girth || (new_girth == girth && rng.gen_bool(0.25)) {
            edges = candidate;
            girth = new_girth;
        }
    }
    (SimpleGraph::new(n, edges), girth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_properties() {
        let c5 = SimpleGraph::cycle(5);
        assert!(c5.is_connected());
        assert!(!c5.is_bipartite());
        assert_eq!(c5.girth(), Some(5));
        let c6 = SimpleGraph::cycle(6);
        assert!(c6.is_bipartite());
        assert_eq!(c6.girth(), Some(6));
    }

    #[test]
    fn complete_graph_properties() {
        let k4 = SimpleGraph::complete(4);
        assert_eq!(k4.edges().len(), 6);
        assert_eq!(k4.girth(), Some(3));
        assert_eq!(k4.degrees(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn petersen_is_3_regular_girth_5() {
        let p = SimpleGraph::petersen();
        assert_eq!(p.n(), 10);
        assert!(p.degrees().iter().all(|&d| d == 3));
        assert_eq!(p.girth(), Some(5));
        assert!(p.is_connected());
        assert!(!p.is_bipartite());
    }

    #[test]
    fn double_cover_of_odd_cycle_is_even_cycle() {
        let c5 = SimpleGraph::cycle(5);
        let dc = c5.double_cover();
        assert_eq!(dc.n(), 10);
        assert!(dc.is_bipartite());
        assert!(
            dc.is_connected(),
            "double cover of non-bipartite is connected"
        );
        assert_eq!(dc.girth(), Some(10), "C5 double cover is C10");
    }

    #[test]
    fn double_cover_of_bipartite_disconnects() {
        let c6 = SimpleGraph::cycle(6);
        let dc = c6.double_cover();
        assert!(!dc.is_connected(), "bipartite base gives two copies");
        assert!(dc.is_bipartite());
    }

    #[test]
    fn double_cover_preserves_degrees() {
        let p = SimpleGraph::petersen();
        let dc = p.double_cover();
        assert!(dc.degrees().iter().all(|&d| d == 3));
        assert!(dc.is_connected());
        assert!(dc.girth().unwrap() >= p.girth().unwrap());
    }

    #[test]
    fn random_regular_is_regular_connected() {
        for seed in 0..3 {
            let (g, girth) = random_regular(24, 3, 4, seed);
            assert!(g.degrees().iter().all(|&d| d == 3));
            assert!(g.is_connected());
            assert_eq!(g.girth(), Some(girth));
        }
    }

    #[test]
    fn random_regular_reaches_modest_girth() {
        let (g, girth) = random_regular(60, 3, 6, 7);
        assert!(
            girth >= 5,
            "girth improvement should clear short cycles, got {girth}"
        );
        assert!(g.is_connected());
    }

    #[test]
    fn random_regular_deterministic_in_seed() {
        let (g1, _) = random_regular(20, 3, 4, 99);
        let (g2, _) = random_regular(20, 3, 4, 99);
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    #[should_panic(expected = "duplicate edges")]
    fn constructor_rejects_duplicates() {
        SimpleGraph::new(3, vec![(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "loops")]
    fn constructor_rejects_loops() {
        SimpleGraph::new(3, vec![(1, 1)]);
    }

    #[test]
    fn permutation_lift_preserves_degrees_and_covers() {
        let base = SimpleGraph::petersen();
        let lift = permutation_lift(&base, 3, 11);
        assert_eq!(lift.n(), 30);
        assert!(lift.degrees().iter().all(|&d| d == 3));
        // Girth never decreases under covers.
        assert!(lift.girth().unwrap() >= base.girth().unwrap());
        // The projection (v, j) → v maps lift edges onto base edges.
        for &(x, y) in lift.edges() {
            let (bx, by) = (x % 10, y % 10);
            let e = if bx < by { (bx, by) } else { (by, bx) };
            assert!(base.edges().contains(&e), "edge {x}-{y} projects to {e:?}");
        }
    }

    #[test]
    fn trivial_lift_is_the_base() {
        let base = SimpleGraph::cycle(5);
        let lift = permutation_lift(&base, 1, 0);
        assert_eq!(lift.n(), base.n());
        let mut a = lift.edges().to_vec();
        let mut b = base.edges().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn lift_of_cycle_is_union_of_cycles() {
        // Lifts of C_n are disjoint cycles with total length n·k.
        let base = SimpleGraph::cycle(4);
        let lift = permutation_lift(&base, 4, 3);
        assert_eq!(lift.n(), 16);
        assert!(lift.degrees().iter().all(|&d| d == 2));
    }
}
