//! The §5 algorithm as an actual message-passing protocol on `mmlp-net`
//! — anonymous nodes, port numbering, Θ(R) synchronous rounds.
//!
//! Three phases, each `4r + 2` send rounds (`r = R − 2`):
//!
//! 1. **View gathering** (§5.1/§4.1): every node assembles its
//!    radius-`(4r+2)` view of the unfolding; each agent then computes its
//!    tree bound `t_u` locally from the view, by the same `f±` bisection
//!    as the centralized evaluator. (The paper's alternating tree `A_u`
//!    has radius `4r+3`, but its deepest leaf constraints carry only the
//!    coefficients `a_iv` of their level-`4r+1` agents — which those
//!    agents already know — so radius `4r+2` views suffice.)
//! 2. **Smoothing flood** (§5.3): `4r+2` rounds of min-flooding give
//!    every agent `s_v = min { t_u : dist(u, v) ≤ 4r+2 }`.
//! 3. **`g±` exchanges** (§5.3): per level `d`, two rounds via the
//!    objective (to sum the neighbours' `g⁺_{w,d}`) and two rounds via
//!    the constraints (to ship the partner products
//!    `a_{i,n} · g⁻_{n,d}`); the last level needs no constraint
//!    exchange. Each agent then outputs eq. (18).
//!
//! The protocol's outputs are **bit-identical** to the centralized
//! engine's: every minimum, sum and bisection is evaluated over the same
//! operands in the same order (asserted in tests).

use crate::smoothing::{self, SpecialRun};
use crate::special::SpecialForm;
use mmlp_instance::{NodeKind, Solution};
use mmlp_net::{
    engine, gather_views_flat, FlatViews, Network, NodeInfo, Payload, Protocol, RunResult,
    RunStats, ViewArena, ViewChild, ViewId, ViewTree, CHILD_BACK,
};

/// Message alphabet of the protocol.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Phase 1: a (sender-port-tagged) partial view.
    View(u32, ViewTree),
    /// Phases 2–3: a scalar (`t` minima, `g±` aggregates).
    Val(f64),
}

impl Payload for Msg {
    fn size_bytes(&self) -> usize {
        match self {
            Msg::View(_, t) => 4 + t.size_bytes(),
            Msg::Val(_) => 8,
        }
    }
}

/// Per-node state.
#[derive(Clone, Debug)]
pub struct DistState {
    view: ViewTree,
    /// Agents: the tree bound `t_u` once phase 1 ends.
    pub t: Option<f64>,
    /// Running minimum during phase 2; ends as `s_v` on agents.
    flood: f64,
    /// `g⁺_{v,d}` per level (agents).
    g_plus: Vec<f64>,
    /// `g⁻_{v,d}` per level (agents).
    g_minus: Vec<f64>,
    /// The output (18), set in `finish` (agents only).
    pub x: Option<f64>,
}

/// The protocol object.
pub struct DistMaxMin {
    big_r: usize,
}

impl DistMaxMin {
    /// Creates the protocol with locality parameter `R ≥ 2`.
    pub fn new(big_r: usize) -> Self {
        assert!(big_r >= 2);
        DistMaxMin { big_r }
    }

    fn r(&self) -> usize {
        self.big_r - 2
    }

    /// Length of one phase in send rounds.
    fn phase_len(&self) -> usize {
        4 * self.r() + 2
    }
}

/// Total synchronous rounds used: `3·(4r+2) = 12R − 18`.
pub fn rounds_needed(big_r: usize) -> usize {
    3 * (4 * (big_r - 2) + 2)
}

/// Moves the phase-1 view payloads out of an inbox (no tree is cloned;
/// the engine overwrites the slots at the next delivery).
fn take_views(inbox: &mut [Option<Msg>]) -> Vec<Option<(u32, ViewTree)>> {
    inbox
        .iter_mut()
        .map(|m| match m.take() {
            Some(Msg::View(p, t)) => Some((p, t)),
            _ => None,
        })
        .collect()
}

// ---- local computation on views -------------------------------------

/// Index of the (unique, in special form) objective port of an agent.
fn objective_port(node: &NodeInfo) -> usize {
    node.ports
        .iter()
        .position(|p| p.neighbor_kind == NodeKind::Objective)
        .expect("special form: every agent touches an objective")
}

/// `min_i 1/a_iv` from an agent's own view node.
fn cap_of(view: &ViewTree) -> f64 {
    view.port_kinds
        .iter()
        .zip(&view.coefs)
        .filter(|(k, _)| **k == NodeKind::Constraint)
        .map(|(_, a)| 1.0 / a)
        .fold(f64::INFINITY, f64::min)
}

/// The objective subtree of an agent's view node (unique Sub child with
/// kind Objective).
fn objective_child(view: &ViewTree) -> &ViewTree {
    for (p, kind) in view.port_kinds.iter().enumerate() {
        if *kind == NodeKind::Objective {
            if let ViewChild::Sub(t) = &view.children[p] {
                return t;
            }
        }
    }
    panic!("objective child missing — view gathered too shallow");
}

/// `f⁺` on a view subtree: `w` is a down-type agent at level `4(r−d)+1`,
/// entered from its objective. `None` when condition (8) fails.
fn f_plus_view(w: &ViewTree, d: usize, omega: f64) -> Option<f64> {
    let val = if d == 0 {
        cap_of(w)
    } else {
        let mut m = f64::INFINITY;
        for (p, kind) in w.port_kinds.iter().enumerate() {
            if *kind != NodeKind::Constraint {
                continue;
            }
            let a_own = w.coefs[p];
            let cons = match &w.children[p] {
                ViewChild::Sub(t) => t,
                _ => panic!("constraint child missing — view gathered too shallow"),
            };
            // The constraint's unique other Sub child is the partner.
            let partner = cons
                .children
                .iter()
                .find_map(|c| match c {
                    ViewChild::Sub(t) => Some(t),
                    _ => None,
                })
                .expect("special form: constraints have a partner agent");
            // The partner's coefficient towards this constraint is on its
            // Back port.
            let back = partner
                .children
                .iter()
                .position(|c| matches!(c, ViewChild::Back))
                .expect("non-root subtree has a back edge");
            let a_partner = partner.coefs[back];
            let fm = f_minus_view(partner, d - 1, omega)?;
            m = m.min((1.0 - a_partner * fm) / a_own);
        }
        m
    };
    (val >= 0.0).then_some(val)
}

/// `f⁻` on a view subtree: `n` is an up-type agent at level `4(r−d)−1`,
/// entered from a constraint.
fn f_minus_view(n: &ViewTree, d: usize, omega: f64) -> Option<f64> {
    let k = objective_child(n);
    let mut sum = 0.0;
    for c in &k.children {
        if let ViewChild::Sub(w) = c {
            sum += f_plus_view(w, d, omega)?;
        }
    }
    Some((omega - sum).max(0.0))
}

/// Computes `t_u` from the agent's radius-`(4r+2)` view — the same
/// bisection as `tree_bound::TreeBound::t`, evaluated on the view.
pub fn t_from_view(view: &ViewTree, big_r: usize) -> f64 {
    let r = big_r - 2;
    let cap_u = cap_of(view);
    let k = objective_child(view);
    let others: Vec<&ViewTree> = k
        .children
        .iter()
        .filter_map(|c| match c {
            ViewChild::Sub(t) => Some(t.as_ref()),
            _ => None,
        })
        .collect();
    let hi0 = cap_u + others.iter().map(|w| cap_of(w)).sum::<f64>();
    let feasible = |omega: f64| -> bool {
        let mut sum = 0.0;
        for w in &others {
            match f_plus_view(w, r, omega) {
                Some(fp) => sum += fp,
                None => return false,
            }
        }
        (omega - sum).max(0.0) <= cap_u
    };
    if hi0 == 0.0 || feasible(hi0) {
        return hi0;
    }
    let (mut lo, mut hi) = (0.0f64, hi0);
    let tol = crate::tree_bound::BISECT_REL_TOL * hi0.max(1.0);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---- local computation on flat (arena) views -------------------------
//
// The same `f±` recursions, evaluated iteratively over the arena's CSR
// child ranges and **memoised per interned subtree**: hash-consing makes
// "same subtree" an id compare, so shared subtrees — which is most of a
// ball in the unfolding — are evaluated once per `(id, level)` instead
// of once per occurrence. Every arithmetic operation runs on the same
// operands in the same order as the recursive tree evaluators, so the
// results are bit-identical (asserted in tests).

/// Memo tables for one `(root, ω)` flat evaluation, indexed densely by
/// interned subtree id × level. Reused across agents; "clearing" per ω
/// probe is a generation bump, so the hot loop does no hashing and no
/// table wipes.
#[derive(Default)]
pub struct FlatScratch {
    /// Current probe generation; entries are live iff stamped with it.
    gen: u64,
    /// Levels per id (`r + 1`); fixes the flat indexing.
    levels: usize,
    fp: Vec<(u64, Option<f64>)>,
    fm: Vec<(u64, Option<f64>)>,
}

impl FlatScratch {
    /// Sizes the tables for `nodes × levels` slots (no-op when already
    /// large enough with the same level stride).
    fn prepare(&mut self, nodes: usize, levels: usize) {
        let need = nodes * levels;
        if self.levels != levels || self.fp.len() < need {
            self.fp = vec![(0, None); need];
            self.fm = vec![(0, None); need];
            self.levels = levels;
            self.gen = 0;
        }
    }

    /// Starts a new ω probe: previous entries become stale in O(1).
    fn clear(&mut self) {
        self.gen += 1;
    }

    #[inline]
    fn slot(&self, id: ViewId, d: u32) -> usize {
        id as usize * self.levels + d as usize
    }
}

/// `min_i 1/a_iv` from an agent's interned view node.
fn cap_of_flat(arena: &ViewArena, v: ViewId) -> f64 {
    arena
        .port_kinds(v)
        .iter()
        .zip(arena.coefs(v))
        .filter(|(k, _)| **k == NodeKind::Constraint)
        .map(|(_, a)| 1.0 / a)
        .fold(f64::INFINITY, f64::min)
}

/// The objective subtree of an agent's interned view node.
fn objective_child_flat(arena: &ViewArena, v: ViewId) -> ViewId {
    for (p, kind) in arena.port_kinds(v).iter().enumerate() {
        if *kind == NodeKind::Objective {
            let c = arena.children(v)[p];
            if c < CHILD_BACK {
                return c;
            }
        }
    }
    panic!("objective child missing — view gathered too shallow");
}

/// `f⁺` on an interned subtree (cf. [`f_plus_view`]), memoised.
fn f_plus_flat(
    arena: &ViewArena,
    w: ViewId,
    d: u32,
    omega: f64,
    sc: &mut FlatScratch,
) -> Option<f64> {
    let slot = sc.slot(w, d);
    let (stamp, memo) = sc.fp[slot];
    if stamp == sc.gen {
        return memo;
    }
    let val = if d == 0 {
        Some(cap_of_flat(arena, w))
    } else {
        let mut m = f64::INFINITY;
        let mut ok = true;
        for (p, kind) in arena.port_kinds(w).iter().enumerate() {
            if *kind != NodeKind::Constraint {
                continue;
            }
            let a_own = arena.coefs(w)[p];
            let cons = arena.children(w)[p];
            assert!(
                cons < CHILD_BACK,
                "constraint child missing — view gathered too shallow"
            );
            // The constraint's unique other Sub child is the partner;
            // its coefficient towards this constraint is on its Back
            // port.
            let partner = arena
                .children(cons)
                .iter()
                .copied()
                .find(|&c| c < CHILD_BACK)
                .expect("special form: constraints have a partner agent");
            let back = arena
                .children(partner)
                .iter()
                .position(|&c| c == CHILD_BACK)
                .expect("non-root subtree has a back edge");
            let a_partner = arena.coefs(partner)[back];
            match f_minus_flat(arena, partner, d - 1, omega, sc) {
                Some(fm) => m = m.min((1.0 - a_partner * fm) / a_own),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        ok.then_some(m)
    };
    let result = match val {
        Some(v) if v >= 0.0 => Some(v),
        _ => None,
    };
    sc.fp[slot] = (sc.gen, result);
    result
}

/// `f⁻` on an interned subtree (cf. [`f_minus_view`]), memoised.
fn f_minus_flat(
    arena: &ViewArena,
    n: ViewId,
    d: u32,
    omega: f64,
    sc: &mut FlatScratch,
) -> Option<f64> {
    let slot = sc.slot(n, d);
    let (stamp, memo) = sc.fm[slot];
    if stamp == sc.gen {
        return memo;
    }
    let k = objective_child_flat(arena, n);
    let mut sum = 0.0;
    let mut ok = true;
    for &w in arena.children(k) {
        if w < CHILD_BACK {
            match f_plus_flat(arena, w, d, omega, sc) {
                Some(fp) => sum += fp,
                None => {
                    ok = false;
                    break;
                }
            }
        }
    }
    let result = ok.then(|| (omega - sum).max(0.0));
    sc.fm[slot] = (sc.gen, result);
    result
}

/// [`t_from_view`] on an interned root: the same bisection, memoised
/// per shared subtree — bit-identical results.
pub fn t_from_arena(arena: &ViewArena, root: ViewId, big_r: usize, sc: &mut FlatScratch) -> f64 {
    let r = (big_r - 2) as u32;
    sc.prepare(arena.len(), r as usize + 1);
    let cap_u = cap_of_flat(arena, root);
    let k = objective_child_flat(arena, root);
    let others: Vec<ViewId> = arena
        .children(k)
        .iter()
        .copied()
        .filter(|&c| c < CHILD_BACK)
        .collect();
    let hi0 = cap_u + others.iter().map(|&w| cap_of_flat(arena, w)).sum::<f64>();
    let mut feasible = |omega: f64| -> bool {
        sc.clear();
        let mut sum = 0.0;
        for &w in &others {
            match f_plus_flat(arena, w, r, omega, sc) {
                Some(fp) => sum += fp,
                None => return false,
            }
        }
        (omega - sum).max(0.0) <= cap_u
    };
    if hi0 == 0.0 || feasible(hi0) {
        return hi0;
    }
    let (mut lo, mut hi) = (0.0f64, hi0);
    let tol = crate::tree_bound::BISECT_REL_TOL * hi0.max(1.0);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---- the protocol ----------------------------------------------------

impl Protocol for DistMaxMin {
    type State = DistState;
    type Message = Msg;

    fn rounds(&self) -> usize {
        rounds_needed(self.big_r)
    }

    fn init(&self, node: &NodeInfo) -> DistState {
        DistState {
            view: ViewTree::depth_zero(node),
            t: None,
            flood: f64::INFINITY,
            g_plus: Vec::new(),
            g_minus: Vec::new(),
            x: None,
        }
    }

    fn round(
        &self,
        st: &mut DistState,
        node: &NodeInfo,
        round: usize,
        inbox: &mut [Option<Msg>],
        outbox: &mut [Option<Msg>],
    ) {
        let a = self.phase_len(); // phase-1 sends: rounds [0, a)
        let b = 2 * a; // phase-2 sends: rounds [a, 2a); phase 3: [2a, 3a)
        let is_agent = node.kind == NodeKind::Agent;
        let r = self.r();

        if round < a {
            // ---- phase 1: view gathering ----
            if round > 0 {
                let mut views = take_views(inbox);
                st.view = ViewTree::from_inbox(&st.view, &mut views);
            }
            for (p, slot) in outbox.iter_mut().enumerate() {
                *slot = Some(Msg::View(p as u32, st.view.clone()));
            }
            return;
        }

        if round == a {
            // Final view absorb; agents compute t and seed the flood.
            let mut views = take_views(inbox);
            st.view = ViewTree::from_inbox(&st.view, &mut views);
            if is_agent {
                let t = t_from_view(&st.view, self.big_r);
                st.t = Some(t);
                st.flood = t;
            }
        }

        if round < b {
            // ---- phase 2: min-flooding of t ----
            if round > a {
                for m in inbox.iter().flatten() {
                    if let Msg::Val(v) = m {
                        st.flood = st.flood.min(*v);
                    }
                }
            }
            if st.flood.is_finite() {
                for slot in outbox.iter_mut() {
                    *slot = Some(Msg::Val(st.flood));
                }
            }
            return;
        }

        // ---- phase 3: g± exchanges ----
        let step = round - b; // 0-based within phase 3
        let d = step / 4;
        match step % 4 {
            0 => {
                if is_agent {
                    if d == 0 {
                        // Final flood absorb: s_v.
                        for m in inbox.iter().flatten() {
                            if let Msg::Val(v) = m {
                                st.flood = st.flood.min(*v);
                            }
                        }
                        // (12): g⁺_{v,0} is local.
                        st.g_plus.push(cap_of(&st.view));
                    } else {
                        // (14): g⁺_{v,d} from the partner products
                        // a_{i,n}·g⁻_{n,d−1} relayed by the constraints.
                        let mut m = f64::INFINITY;
                        for (p, kind) in node.ports.iter().enumerate() {
                            if kind.neighbor_kind != NodeKind::Constraint {
                                continue;
                            }
                            let recv = match &inbox[p] {
                                Some(Msg::Val(v)) => *v,
                                _ => panic!("missing constraint relay"),
                            };
                            let a_own = kind.coef.expect("agents know coefficients");
                            m = m.min((1.0 - recv) / a_own);
                        }
                        st.g_plus.push(m);
                    }
                    // Send g⁺_{v,d} to the objective.
                    let kp = objective_port(node);
                    outbox[kp] = Some(Msg::Val(st.g_plus[d]));
                }
            }
            1 => {
                if node.kind == NodeKind::Objective {
                    // Reply to each member the sum of the *others*.
                    let vals: Vec<f64> = inbox
                        .iter()
                        .map(|m| match m {
                            Some(Msg::Val(v)) => *v,
                            _ => panic!("objective missing a member's g⁺"),
                        })
                        .collect();
                    for (p, slot) in outbox.iter_mut().enumerate() {
                        let sum: f64 = vals
                            .iter()
                            .enumerate()
                            .filter(|(q, _)| *q != p)
                            .map(|(_, v)| v)
                            .sum();
                        *slot = Some(Msg::Val(sum));
                    }
                }
            }
            2 => {
                if is_agent {
                    // (13): g⁻_{v,d} from the objective's reply.
                    let kp = objective_port(node);
                    let sum = match &inbox[kp] {
                        Some(Msg::Val(v)) => *v,
                        _ => panic!("missing objective reply"),
                    };
                    st.g_minus.push((st.flood - sum).max(0.0));
                    // Ship partner products through the constraints
                    // (not needed after the last level).
                    if d < r {
                        for (p, kind) in node.ports.iter().enumerate() {
                            if kind.neighbor_kind != NodeKind::Constraint {
                                continue;
                            }
                            let a_own = kind.coef.expect("agents know coefficients");
                            outbox[p] = Some(Msg::Val(a_own * st.g_minus[d]));
                        }
                    }
                }
            }
            3 => {
                if node.kind == NodeKind::Constraint {
                    // Relay each side's product to the other side.
                    debug_assert_eq!(node.degree(), 2);
                    for p in 0..2 {
                        if let Some(Msg::Val(v)) = &inbox[1 - p] {
                            outbox[p] = Some(Msg::Val(*v));
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    fn finish(&self, st: &mut DistState, node: &NodeInfo, inbox: &mut [Option<Msg>]) {
        if node.kind != NodeKind::Agent {
            return;
        }
        let r = self.r();
        // The last objective reply (level r) arrives here.
        let kp = objective_port(node);
        let sum = match &inbox[kp] {
            Some(Msg::Val(v)) => *v,
            _ => panic!("missing final objective reply"),
        };
        st.g_minus.push((st.flood - sum).max(0.0));
        debug_assert_eq!(st.g_plus.len(), r + 1);
        debug_assert_eq!(st.g_minus.len(), r + 1);
        // (18) — written exactly as the centralized `smoothing::output`
        // (multiply by the reciprocal) so results are bit-identical.
        let total: f64 = (0..=r).map(|d| st.g_plus[d] + st.g_minus[d]).sum();
        st.x = Some(total * (1.0 / (2.0 * self.big_r as f64)));
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// The output assignment (18).
    pub solution: Solution,
    /// Per-agent `t_u`.
    pub t: Vec<f64>,
    /// Per-agent smoothed bound `s_v`.
    pub s: Vec<f64>,
    /// Round/message/byte accounting.
    pub stats: RunStats,
}

/// Runs the protocol on a special-form instance.
pub fn solve_distributed(sf: &SpecialForm, big_r: usize) -> DistributedOutcome {
    let net = Network::new(sf.instance());
    let RunResult { states, stats } = engine::run(&net, &DistMaxMin::new(big_r));
    let n = sf.n_agents();
    let mut x = Vec::with_capacity(n);
    let mut t = Vec::with_capacity(n);
    let mut s = Vec::with_capacity(n);
    for st in &states[..n] {
        x.push(st.x.expect("agent produced output"));
        t.push(st.t.expect("agent computed t"));
        s.push(st.flood);
    }
    DistributedOutcome {
        solution: Solution::from_vec(x),
        t,
        s,
        stats,
    }
}

/// The §5 algorithm rebuilt on the **flat view arena** — the faithful
/// distributed semantics at a fraction of the simulation cost:
///
/// 1. **Phase 1** uses [`gather_views_flat`]: payloads are interned ids,
///    so per-round work is `O(Σ degree)` instead of the ball size, and
///    the per-agent bounds `t_u` are then evaluated over the arena roots
///    — in parallel batches of `threads` workers — with the `f±`
///    recursions memoised per shared subtree ([`t_from_arena`]).
/// 2. **Phases 2–3** are scalar recursions; they are evaluated directly
///    (the same operations in the same order as the message protocol)
///    while the protocol's exact per-round message/byte schedule is
///    reproduced for the accounting.
///
/// Outputs (`x`, `t`, `s`) **and** the logical `RunStats` accounting are
/// bit-identical to [`solve_distributed`]; on top of that the stats
/// carry the arena's dedup counters (`interned_nodes`, `arena_bytes`,
/// `peak_arena_bytes`). Asserted across the generator catalog in
/// `tests/flat_views.rs`.
pub fn solve_special_flat(
    sf: &SpecialForm,
    big_r: usize,
    threads: usize,
) -> (SpecialRun, RunStats) {
    assert!(big_r >= 2, "the paper requires R ≥ 2");
    let r = big_r - 2;
    let a_len = 4 * r + 2;
    let net = Network::new(sf.instance());
    let n = sf.n_agents();

    // ---- phase 1: flat gather + threaded t over the arena roots ----
    let FlatViews {
        arena,
        roots,
        mut stats,
    } = gather_views_flat(&net, a_len);
    let threads = threads.max(1);
    let t: Vec<f64> = if threads == 1 || n < 64 {
        let mut sc = FlatScratch::default();
        roots[..n]
            .iter()
            .map(|&root| t_from_arena(&arena, root, big_r, &mut sc))
            .collect()
    } else {
        let mut out = vec![0.0f64; n];
        let chunk = n.div_ceil(threads);
        let (arena_ref, roots_ref) = (&arena, &roots);
        crossbeam::thread::scope(|scope| {
            for (shard, slot) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    let mut sc = FlatScratch::default();
                    for (off, val) in slot.iter_mut().enumerate() {
                        *val =
                            t_from_arena(arena_ref, roots_ref[shard * chunk + off], big_r, &mut sc);
                    }
                });
            }
        })
        .expect("flat t workers");
        out
    };

    // ---- phase 2: min-flood of t (same relaxation order as the
    // protocol; senders are exactly the nodes holding a finite value) --
    let graph = net.graph();
    let n_nodes = graph.n_nodes();
    let mut cur = vec![f64::INFINITY; n_nodes];
    cur[..n].copy_from_slice(&t);
    let mut next = vec![0.0f64; n_nodes];
    for _ in 0..a_len {
        let mut msgs = 0u64;
        for (x, v) in cur.iter().enumerate() {
            if v.is_finite() {
                msgs += graph.neighbors(x as u32).len() as u64;
            }
        }
        stats.messages += msgs;
        stats.bytes += 8 * msgs;
        stats.messages_per_round.push(msgs);
        stats.bytes_per_round.push(8 * msgs);
        for x in 0..n_nodes as u32 {
            let mut m = cur[x as usize];
            for adj in graph.neighbors(x) {
                m = m.min(cur[adj.to as usize]);
            }
            next[x as usize] = m;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let s: Vec<f64> = cur[..n].to_vec();

    // ---- phase 3: g± values via the centralized recursions (proven
    // bit-identical to the message protocol), counts per its schedule --
    let inst = sf.instance();
    let obj_ports: u64 = inst
        .objectives()
        .map(|k| inst.objective_row(k).len() as u64)
        .sum();
    let cons_ports = 2 * inst.n_constraints() as u64;
    for step in 0..a_len {
        let d = step / 4;
        let msgs = match step % 4 {
            0 => n as u64,            // each agent → its objective
            1 => obj_ports,           // each objective → every member
            _ if d < r => cons_ports, // agents → constraints, then relays
            _ => 0,
        };
        stats.messages += msgs;
        stats.bytes += 8 * msgs;
        stats.messages_per_round.push(msgs);
        stats.bytes_per_round.push(8 * msgs);
    }
    stats.rounds = rounds_needed(big_r);

    let g = smoothing::g_tables(sf, &s, r);
    let x = smoothing::output(sf, &g, big_r);
    (SpecialRun { x, t, s, g }, stats)
}

/// [`solve_distributed`] on the flat arena path: bit-identical outputs
/// and accounting, plus dedup counters in `stats`. `threads` parallelises
/// the per-agent `t_u` batch over the arena roots (bit-identical across
/// thread counts).
pub fn solve_distributed_flat(
    sf: &SpecialForm,
    big_r: usize,
    threads: usize,
) -> DistributedOutcome {
    let (run, stats) = solve_special_flat(sf, big_r, threads);
    DistributedOutcome {
        solution: run.x,
        t: run.t,
        s: run.s,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoothing::solve_special;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};

    fn sf(seed: u64) -> SpecialForm {
        SpecialForm::new(random_special_form(&SpecialFormConfig::default(), seed)).unwrap()
    }

    #[test]
    fn distributed_matches_centralized_bitwise() {
        for seed in 0..4 {
            let s = sf(seed);
            for big_r in [2, 3, 4] {
                let central = solve_special(&s, big_r, 1);
                let dist = solve_distributed(&s, big_r);
                for v in 0..s.n_agents() {
                    assert_eq!(
                        dist.t[v].to_bits(),
                        central.t[v].to_bits(),
                        "t: seed {seed} R {big_r} agent {v}"
                    );
                    assert_eq!(
                        dist.s[v].to_bits(),
                        central.s[v].to_bits(),
                        "s: seed {seed} R {big_r} agent {v}"
                    );
                    assert_eq!(
                        dist.solution.as_slice()[v].to_bits(),
                        central.x.as_slice()[v].to_bits(),
                        "x: seed {seed} R {big_r} agent {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_count_is_constant_in_network_size() {
        for big_r in [2, 3] {
            let mut rounds = Vec::new();
            for n_obj in [10, 40] {
                let s = SpecialForm::new(random_special_form(
                    &SpecialFormConfig {
                        n_objectives: n_obj,
                        ..SpecialFormConfig::default()
                    },
                    0,
                ))
                .unwrap();
                let out = solve_distributed(&s, big_r);
                rounds.push(out.stats.rounds);
            }
            assert_eq!(rounds[0], rounds[1], "locality: rounds independent of n");
            assert_eq!(rounds[0], rounds_needed(big_r));
        }
    }

    #[test]
    fn messages_scale_linearly_with_size() {
        let small = solve_distributed(
            &SpecialForm::new(random_special_form(
                &SpecialFormConfig {
                    n_objectives: 10,
                    extra_constraints: 5,
                    ..SpecialFormConfig::default()
                },
                1,
            ))
            .unwrap(),
            3,
        );
        let large = solve_distributed(
            &SpecialForm::new(random_special_form(
                &SpecialFormConfig {
                    n_objectives: 40,
                    extra_constraints: 20,
                    ..SpecialFormConfig::default()
                },
                1,
            ))
            .unwrap(),
            3,
        );
        let ratio = large.stats.messages as f64 / small.stats.messages as f64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4x nodes → ~4x messages, got ratio {ratio}"
        );
    }

    #[test]
    fn cycle_distributed_is_optimal() {
        let s = SpecialForm::new(cycle_special(8, 1.0)).unwrap();
        let out = solve_distributed(&s, 4);
        for v in out.solution.as_slice() {
            assert!((v - 0.5).abs() < 1e-9);
        }
        assert!(out.solution.is_feasible(s.instance(), 1e-9));
    }

    #[test]
    fn flat_path_is_bitwise_identical_to_legacy() {
        for seed in 0..3 {
            let s = sf(seed);
            for big_r in [2, 3, 4] {
                let legacy = solve_distributed(&s, big_r);
                for threads in [1, 4] {
                    let flat = solve_distributed_flat(&s, big_r, threads);
                    for v in 0..s.n_agents() {
                        assert_eq!(flat.t[v].to_bits(), legacy.t[v].to_bits());
                        assert_eq!(flat.s[v].to_bits(), legacy.s[v].to_bits());
                        assert_eq!(
                            flat.solution.as_slice()[v].to_bits(),
                            legacy.solution.as_slice()[v].to_bits(),
                            "seed {seed} R {big_r} threads {threads} agent {v}"
                        );
                    }
                    // The logical accounting is reproduced exactly; only
                    // the dedup counters are new.
                    assert_eq!(flat.stats.rounds, legacy.stats.rounds);
                    assert_eq!(flat.stats.messages, legacy.stats.messages);
                    assert_eq!(flat.stats.bytes, legacy.stats.bytes);
                    assert_eq!(
                        flat.stats.messages_per_round,
                        legacy.stats.messages_per_round
                    );
                    assert_eq!(flat.stats.bytes_per_round, legacy.stats.bytes_per_round);
                    assert!(flat.stats.interned_nodes > 0);
                    assert!(flat.stats.dedup_ratio() > 1.0);
                }
            }
        }
    }

    #[test]
    fn t_from_arena_matches_t_from_view() {
        use mmlp_net::{gather_views, gather_views_flat};
        let s = sf(6);
        let net = Network::new(s.instance());
        for big_r in [2, 3] {
            let depth = 4 * (big_r - 2) + 2;
            let (views, _) = gather_views(&net, depth);
            let flat = gather_views_flat(&net, depth);
            let mut sc = FlatScratch::default();
            for (v, view) in views.iter().enumerate().take(s.n_agents()) {
                let legacy = t_from_view(view, big_r);
                let arena = t_from_arena(&flat.arena, flat.roots[v], big_r, &mut sc);
                assert_eq!(legacy.to_bits(), arena.to_bits(), "agent {v} R {big_r}");
            }
        }
    }

    #[test]
    fn t_from_view_matches_tree_bound() {
        use crate::tree_bound::{Scratch, TreeBound};
        use mmlp_net::gather_views;
        let s = sf(9);
        for big_r in [2, 3] {
            let r = big_r - 2;
            let net = Network::new(s.instance());
            let (views, _) = gather_views(&net, 4 * r + 2);
            let tb = TreeBound::new(&s, big_r);
            let mut sc = Scratch::default();
            for v in s.instance().agents() {
                let direct = tb.t(v, &mut sc);
                let via_view = t_from_view(&views[v.idx()], big_r);
                assert_eq!(direct.to_bits(), via_view.to_bits(), "agent {v} R {big_r}");
            }
        }
    }
}
