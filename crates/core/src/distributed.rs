//! The §5 algorithm as an actual message-passing protocol on `mmlp-net`
//! — anonymous nodes, port numbering, Θ(R) synchronous rounds.
//!
//! Three phases, each `4r + 2` send rounds (`r = R − 2`):
//!
//! 1. **View gathering** (§5.1/§4.1): every node assembles its
//!    radius-`(4r+2)` view of the unfolding; each agent then computes its
//!    tree bound `t_u` locally from the view, by the same `f±` bisection
//!    as the centralized evaluator. (The paper's alternating tree `A_u`
//!    has radius `4r+3`, but its deepest leaf constraints carry only the
//!    coefficients `a_iv` of their level-`4r+1` agents — which those
//!    agents already know — so radius `4r+2` views suffice.)
//! 2. **Smoothing flood** (§5.3): `4r+2` rounds of min-flooding give
//!    every agent `s_v = min { t_u : dist(u, v) ≤ 4r+2 }`.
//! 3. **`g±` exchanges** (§5.3): per level `d`, two rounds via the
//!    objective (to sum the neighbours' `g⁺_{w,d}`) and two rounds via
//!    the constraints (to ship the partner products
//!    `a_{i,n} · g⁻_{n,d}`); the last level needs no constraint
//!    exchange. Each agent then outputs eq. (18).
//!
//! The protocol's outputs are **bit-identical** to the centralized
//! engine's: every minimum, sum and bisection is evaluated over the same
//! operands in the same order (asserted in tests).

use crate::smoothing::{self, SpecialRun};
use crate::special::SpecialForm;
use mmlp_instance::{NodeKind, Solution};
#[cfg(any(test, feature = "legacy-tree"))]
use mmlp_net::{engine, NodeInfo, Payload, Protocol, RunResult, ViewChild, ViewTree};
use mmlp_net::{gather_views_flat, FlatViews, Network, RunStats, ViewArena, ViewId, CHILD_BACK};

/// Message alphabet of the protocol.
#[cfg(any(test, feature = "legacy-tree"))]
#[derive(Clone, Debug)]
pub enum Msg {
    /// Phase 1: a (sender-port-tagged) partial view.
    View(u32, ViewTree),
    /// Phases 2–3: a scalar (`t` minima, `g±` aggregates).
    Val(f64),
}

#[cfg(any(test, feature = "legacy-tree"))]
impl Payload for Msg {
    fn size_bytes(&self) -> usize {
        match self {
            Msg::View(_, t) => 4 + t.size_bytes(),
            Msg::Val(_) => 8,
        }
    }
}

/// Per-node state.
#[cfg(any(test, feature = "legacy-tree"))]
#[derive(Clone, Debug)]
pub struct DistState {
    view: ViewTree,
    /// Agents: the tree bound `t_u` once phase 1 ends.
    pub t: Option<f64>,
    /// Running minimum during phase 2; ends as `s_v` on agents.
    flood: f64,
    /// `g⁺_{v,d}` per level (agents).
    g_plus: Vec<f64>,
    /// `g⁻_{v,d}` per level (agents).
    g_minus: Vec<f64>,
    /// The output (18), set in `finish` (agents only).
    pub x: Option<f64>,
}

/// The protocol object.
#[cfg(any(test, feature = "legacy-tree"))]
pub struct DistMaxMin {
    big_r: usize,
}

#[cfg(any(test, feature = "legacy-tree"))]
impl DistMaxMin {
    /// Creates the protocol with locality parameter `R ≥ 2`.
    pub fn new(big_r: usize) -> Self {
        assert!(big_r >= 2);
        DistMaxMin { big_r }
    }

    fn r(&self) -> usize {
        self.big_r - 2
    }

    /// Length of one phase in send rounds.
    fn phase_len(&self) -> usize {
        4 * self.r() + 2
    }
}

/// Total synchronous rounds used: `3·(4r+2) = 12R − 18`.
pub fn rounds_needed(big_r: usize) -> usize {
    3 * (4 * (big_r - 2) + 2)
}

/// Moves the phase-1 view payloads out of an inbox (no tree is cloned;
/// the engine overwrites the slots at the next delivery).
#[cfg(any(test, feature = "legacy-tree"))]
fn take_views(inbox: &mut [Option<Msg>]) -> Vec<Option<(u32, ViewTree)>> {
    inbox
        .iter_mut()
        .map(|m| match m.take() {
            Some(Msg::View(p, t)) => Some((p, t)),
            _ => None,
        })
        .collect()
}

// ---- local computation on views -------------------------------------

/// Index of the (unique, in special form) objective port of an agent.
#[cfg(any(test, feature = "legacy-tree"))]
fn objective_port(node: &NodeInfo) -> usize {
    node.ports
        .iter()
        .position(|p| p.neighbor_kind == NodeKind::Objective)
        .expect("special form: every agent touches an objective")
}

/// `min_i 1/a_iv` from an agent's own view node.
#[cfg(any(test, feature = "legacy-tree"))]
fn cap_of(view: &ViewTree) -> f64 {
    view.port_kinds
        .iter()
        .zip(&view.coefs)
        .filter(|(k, _)| **k == NodeKind::Constraint)
        .map(|(_, a)| 1.0 / a)
        .fold(f64::INFINITY, f64::min)
}

/// The objective subtree of an agent's view node (unique Sub child with
/// kind Objective).
#[cfg(any(test, feature = "legacy-tree"))]
fn objective_child(view: &ViewTree) -> &ViewTree {
    for (p, kind) in view.port_kinds.iter().enumerate() {
        if *kind == NodeKind::Objective {
            if let ViewChild::Sub(t) = &view.children[p] {
                return t;
            }
        }
    }
    panic!("objective child missing — view gathered too shallow");
}

/// `f⁺` on a view subtree: `w` is a down-type agent at level `4(r−d)+1`,
/// entered from its objective. `None` when condition (8) fails.
#[cfg(any(test, feature = "legacy-tree"))]
fn f_plus_view(w: &ViewTree, d: usize, omega: f64) -> Option<f64> {
    let val = if d == 0 {
        cap_of(w)
    } else {
        let mut m = f64::INFINITY;
        for (p, kind) in w.port_kinds.iter().enumerate() {
            if *kind != NodeKind::Constraint {
                continue;
            }
            let a_own = w.coefs[p];
            let cons = match &w.children[p] {
                ViewChild::Sub(t) => t,
                _ => panic!("constraint child missing — view gathered too shallow"),
            };
            // The constraint's unique other Sub child is the partner.
            let partner = cons
                .children
                .iter()
                .find_map(|c| match c {
                    ViewChild::Sub(t) => Some(t),
                    _ => None,
                })
                .expect("special form: constraints have a partner agent");
            // The partner's coefficient towards this constraint is on its
            // Back port.
            let back = partner
                .children
                .iter()
                .position(|c| matches!(c, ViewChild::Back))
                .expect("non-root subtree has a back edge");
            let a_partner = partner.coefs[back];
            let fm = f_minus_view(partner, d - 1, omega)?;
            m = m.min((1.0 - a_partner * fm) / a_own);
        }
        m
    };
    (val >= 0.0).then_some(val)
}

/// `f⁻` on a view subtree: `n` is an up-type agent at level `4(r−d)−1`,
/// entered from a constraint.
#[cfg(any(test, feature = "legacy-tree"))]
fn f_minus_view(n: &ViewTree, d: usize, omega: f64) -> Option<f64> {
    let k = objective_child(n);
    let mut sum = 0.0;
    for c in &k.children {
        if let ViewChild::Sub(w) = c {
            sum += f_plus_view(w, d, omega)?;
        }
    }
    Some((omega - sum).max(0.0))
}

/// Computes `t_u` from the agent's radius-`(4r+2)` view — the same
/// bisection as `tree_bound::TreeBound::t`, evaluated on the view.
///
/// Legacy tree path: available to tests and under the `legacy-tree`
/// feature only (ViewTree deprecation step 2; see ROADMAP.md).
#[cfg(any(test, feature = "legacy-tree"))]
pub fn t_from_view(view: &ViewTree, big_r: usize) -> f64 {
    let r = big_r - 2;
    let cap_u = cap_of(view);
    let k = objective_child(view);
    let others: Vec<&ViewTree> = k
        .children
        .iter()
        .filter_map(|c| match c {
            ViewChild::Sub(t) => Some(t.as_ref()),
            _ => None,
        })
        .collect();
    let hi0 = cap_u + others.iter().map(|w| cap_of(w)).sum::<f64>();
    let feasible = |omega: f64| -> bool {
        let mut sum = 0.0;
        for w in &others {
            match f_plus_view(w, r, omega) {
                Some(fp) => sum += fp,
                None => return false,
            }
        }
        (omega - sum).max(0.0) <= cap_u
    };
    if hi0 == 0.0 || feasible(hi0) {
        return hi0;
    }
    let (mut lo, mut hi) = (0.0f64, hi0);
    let tol = crate::tree_bound::BISECT_REL_TOL * hi0.max(1.0);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---- local computation on flat (arena) views -------------------------
//
// The same `f±` recursions, evaluated iteratively over the arena's CSR
// child ranges and **memoised per interned subtree**: hash-consing makes
// "same subtree" an id compare, so shared subtrees — which is most of a
// ball in the unfolding — are evaluated once per `(id, level)` instead
// of once per occurrence. Every arithmetic operation runs on the same
// operands in the same order as the recursive tree evaluators — except
// the capacity folds `min_i 1/a_iv`, which run in chunked f64 lanes
// (`mmlp_net::lanes`) and are order-independent at the bit level — so
// the results are bit-identical (asserted in tests). Sums are never
// reassociated; see `specs/PERF.md` for the boundary.

/// Logical subtree size below which the `f±` evaluators skip the memo
/// table and recompute directly.
///
/// A memo probe costs a (usually cold) load into a table that is far
/// bigger than L1; a tiny subtree costs a handful of arithmetic ops on
/// arena columns that are already streaming through cache. Measured on
/// the `view-eval-t` bench workload (120-objective special form,
/// R ∈ {3, 4}), cutoffs in 16–64 are within noise of each other and
/// all beat both "memoise everything" (the PR-5 regression) and "never
/// memoise"; see `specs/PERF.md` for the sweep.
pub const MEMO_MIN_SUBTREE: u64 = 32;

/// `memo_base` sentinel: this subtree is below [`MEMO_MIN_SUBTREE`] and
/// is never memoised.
const MEMO_SKIP: u32 = u32::MAX;

/// A NaN bit pattern no `f±` evaluation can produce (the evaluators
/// only ever yield non-negative values or `None`), used to encode
/// `None` in a memo slot without an `Option` discriminant.
const MEMO_NONE_BITS: u64 = 0x7ff8_dead_beef_0001;

/// One generation-stamped memo slot: 16 bytes instead of the 24-byte
/// `(u64, Option<f64>)` it replaces, so the same table holds 1.5× more
/// entries per cache line and the per-worker tables shrink accordingly.
#[derive(Clone, Copy, Default)]
struct MemoSlot {
    gen: u32,
    bits: u64,
}

#[inline]
fn memo_encode(v: Option<f64>) -> u64 {
    match v {
        Some(x) => x.to_bits(),
        None => MEMO_NONE_BITS,
    }
}

#[inline]
fn memo_decode(bits: u64) -> Option<f64> {
    (bits != MEMO_NONE_BITS).then(|| f64::from_bits(bits))
}

/// Memo tables for one `(root, ω)` flat evaluation — private to one
/// worker, so concurrent `t` batches never share (or false-share) memo
/// cache lines. Reused across agents; "clearing" per ω probe is a
/// generation bump, so the hot loop does no hashing and no table wipes.
///
/// The tables are **compact**: `FlatScratch::prepare` walks the arena
/// once per `(arena, levels)` pair and assigns memo slots only to
/// subtrees of logical size ≥ [`MEMO_MIN_SUBTREE`] (everything smaller
/// recomputes), and precomputes every agent node's capacity
/// `min_i 1/a_iv` — which is ω-independent — into a per-id table using
/// the lane fold [`mmlp_net::lanes::min_recip_where`]. On the dedup-
/// heavy arenas of deep gathers this shrinks the stamped region by an
/// order of magnitude versus the old dense `ids × levels` layout, which
/// is what made spinning up per-thread scratches cost more than the
/// parallelism won back (the PR-5 `flat-threaded` regression).
#[derive(Default)]
pub struct FlatScratch {
    /// Identity of the arena the tables below are laid out for.
    arena_token: u64,
    /// Interned-node count at layout time (token + length pin the
    /// layout even across clones that grew).
    arena_len: usize,
    /// Levels per memoised id (`r + 1`); fixes the slot stride.
    levels: usize,
    /// Current probe generation; entries are live iff stamped with it.
    gen: u32,
    /// id → first slot of its `levels` memo slots, or [`MEMO_SKIP`].
    memo_base: Vec<u32>,
    /// id → `min_i 1/a_iv` for agent nodes (NaN filler for rows; never
    /// read — rows have no capacity).
    caps: Vec<f64>,
    fp: Vec<MemoSlot>,
    fm: Vec<MemoSlot>,
    /// Live memo probes answered from the table this layout's lifetime.
    memo_hits: u64,
    /// Probes that missed (stale or never-stamped slot) and recomputed.
    memo_misses: u64,
    /// Evaluations that bypassed the table — subtree below
    /// [`MEMO_MIN_SUBTREE`], or the level-0 precomputed-capacity path.
    memo_skips: u64,
}

impl FlatScratch {
    /// Lays the tables out for `arena` with `levels` memo levels per
    /// subtree (no-op when already laid out for exactly this arena and
    /// stride).
    ///
    /// When the **same** arena merely grew since the last layout — the
    /// dynamic solver's steady state, where each delta hash-conses a few
    /// ball-local subtrees into a persistent arena — the tables are
    /// *extended* for the new ids only, in O(new ids) instead of the
    /// O(arena) full re-layout. Interned nodes are immutable, so the
    /// existing caps, slot assignments and live memo generations all stay
    /// valid; fresh slots carry generation 0, which is stale by
    /// construction (probes only trust the current generation, which a
    /// [`FlatScratch::clear`] has always bumped past 0).
    fn prepare(&mut self, arena: &ViewArena, levels: usize) {
        if self.arena_token == arena.token() && self.levels == levels {
            if self.arena_len == arena.len() {
                return;
            }
            if self.arena_len > 0 && self.arena_len < arena.len() {
                self.extend(arena);
                return;
            }
        }
        let n = arena.len();
        self.arena_token = arena.token();
        self.arena_len = n;
        self.levels = levels;
        self.gen = 0;
        self.memo_base.clear();
        self.memo_base.reserve(n);
        self.caps.clear();
        self.caps.reserve(n);
        let mut slots = 0u32;
        for id in 0..n as ViewId {
            self.caps.push(if arena.kind(id) == NodeKind::Agent {
                mmlp_net::lanes::min_recip_where(
                    arena.port_kinds(id),
                    arena.coefs(id),
                    NodeKind::Constraint,
                )
            } else {
                f64::NAN
            });
            self.memo_base.push(if arena.size(id) >= MEMO_MIN_SUBTREE {
                let base = slots;
                slots += levels as u32;
                base
            } else {
                MEMO_SKIP
            });
        }
        self.fp = vec![MemoSlot::default(); slots as usize];
        self.fm = vec![MemoSlot::default(); slots as usize];
    }

    /// Appends layout for ids interned since the last
    /// [`FlatScratch::prepare`] of the same arena.
    fn extend(&mut self, arena: &ViewArena) {
        let mut slots = self.fp.len() as u32;
        for id in self.arena_len as ViewId..arena.len() as ViewId {
            self.caps.push(if arena.kind(id) == NodeKind::Agent {
                mmlp_net::lanes::min_recip_where(
                    arena.port_kinds(id),
                    arena.coefs(id),
                    NodeKind::Constraint,
                )
            } else {
                f64::NAN
            });
            self.memo_base.push(if arena.size(id) >= MEMO_MIN_SUBTREE {
                let base = slots;
                slots += self.levels as u32;
                base
            } else {
                MEMO_SKIP
            });
        }
        self.fp.resize(slots as usize, MemoSlot::default());
        self.fm.resize(slots as usize, MemoSlot::default());
        self.arena_len = arena.len();
    }

    /// Live memo probes answered from the tables over this layout's
    /// lifetime.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Memo probes that missed (stale or never-stamped) and recomputed.
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Evaluations that bypassed the memo (small subtree or the level-0
    /// precomputed-capacity path).
    pub fn memo_skips(&self) -> u64 {
        self.memo_skips
    }

    /// Starts a new ω probe: previous entries become stale in O(1).
    fn clear(&mut self) {
        if self.gen == u32::MAX {
            // Generation wrap: re-zero the stamps so stale entries from
            // 4 billion probes ago cannot alias the fresh generation.
            self.fp.fill(MemoSlot::default());
            self.fm.fill(MemoSlot::default());
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Memo slot of `(id, d)`, or `None` below the memo cutoff.
    #[inline]
    fn slot(&self, id: ViewId, d: u32) -> Option<usize> {
        let base = self.memo_base[id as usize];
        (base != MEMO_SKIP).then(|| base as usize + d as usize)
    }
}

/// The objective subtree of an agent's interned view node.
fn objective_child_flat(arena: &ViewArena, v: ViewId) -> ViewId {
    for (p, kind) in arena.port_kinds(v).iter().enumerate() {
        if *kind == NodeKind::Objective {
            let c = arena.children(v)[p];
            if c < CHILD_BACK {
                return c;
            }
        }
    }
    panic!("objective child missing — view gathered too shallow");
}

/// `f⁺` on an interned subtree (cf. the legacy `f_plus_view`), memoised
/// above the [`MEMO_MIN_SUBTREE`] cutoff.
fn f_plus_flat(
    arena: &ViewArena,
    w: ViewId,
    d: u32,
    omega: f64,
    sc: &mut FlatScratch,
) -> Option<f64> {
    if d == 0 {
        // The level-0 value is the precomputed (ω-independent) capacity;
        // no memo traffic at the recursion's widest level.
        sc.memo_skips += 1;
        return Some(sc.caps[w as usize]);
    }
    let slot = sc.slot(w, d);
    if let Some(s) = slot {
        let MemoSlot { gen, bits } = sc.fp[s];
        if gen == sc.gen {
            sc.memo_hits += 1;
            return memo_decode(bits);
        }
    }
    let val = {
        let mut m = f64::INFINITY;
        let mut ok = true;
        for (p, kind) in arena.port_kinds(w).iter().enumerate() {
            if *kind != NodeKind::Constraint {
                continue;
            }
            let a_own = arena.coefs(w)[p];
            let cons = arena.children(w)[p];
            assert!(
                cons < CHILD_BACK,
                "constraint child missing — view gathered too shallow"
            );
            // The constraint's unique other Sub child is the partner;
            // its coefficient towards this constraint is on its Back
            // port.
            let partner = arena
                .children(cons)
                .iter()
                .copied()
                .find(|&c| c < CHILD_BACK)
                .expect("special form: constraints have a partner agent");
            let back = arena
                .children(partner)
                .iter()
                .position(|&c| c == CHILD_BACK)
                .expect("non-root subtree has a back edge");
            let a_partner = arena.coefs(partner)[back];
            match f_minus_flat(arena, partner, d - 1, omega, sc) {
                Some(fm) => m = m.min((1.0 - a_partner * fm) / a_own),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        ok.then_some(m)
    };
    let result = match val {
        Some(v) if v >= 0.0 => Some(v),
        _ => None,
    };
    if let Some(s) = slot {
        sc.memo_misses += 1;
        sc.fp[s] = MemoSlot {
            gen: sc.gen,
            bits: memo_encode(result),
        };
    } else {
        sc.memo_skips += 1;
    }
    result
}

/// `f⁻` on an interned subtree (cf. the legacy `f_minus_view`),
/// memoised above the [`MEMO_MIN_SUBTREE`] cutoff.
fn f_minus_flat(
    arena: &ViewArena,
    n: ViewId,
    d: u32,
    omega: f64,
    sc: &mut FlatScratch,
) -> Option<f64> {
    let slot = sc.slot(n, d);
    if let Some(s) = slot {
        let MemoSlot { gen, bits } = sc.fm[s];
        if gen == sc.gen {
            sc.memo_hits += 1;
            return memo_decode(bits);
        }
    }
    let k = objective_child_flat(arena, n);
    // This sum feeds outputs asserted bit-identical to the recursive
    // tree path, so it keeps its left-to-right order (see the
    // reassociation boundary in `mmlp_net::lanes`).
    let mut sum = 0.0;
    let mut ok = true;
    for &w in arena.children(k) {
        if w < CHILD_BACK {
            match f_plus_flat(arena, w, d, omega, sc) {
                Some(fp) => sum += fp,
                None => {
                    ok = false;
                    break;
                }
            }
        }
    }
    let result = ok.then(|| (omega - sum).max(0.0));
    if let Some(s) = slot {
        sc.memo_misses += 1;
        sc.fm[s] = MemoSlot {
            gen: sc.gen,
            bits: memo_encode(result),
        };
    } else {
        sc.memo_skips += 1;
    }
    result
}

/// The legacy `t_from_view` bisection on an interned root, memoised
/// per shared subtree — bit-identical results.
///
/// `sc` is laid out for `(arena, R)` on first use and reused across
/// roots and ω probes; capacities come from the precomputed per-id
/// table, and every sum keeps the recursive path's operand order so the
/// result is bit-for-bit equal to `t_from_view` (asserted in tests).
pub fn t_from_arena(arena: &ViewArena, root: ViewId, big_r: usize, sc: &mut FlatScratch) -> f64 {
    let r = (big_r - 2) as u32;
    sc.prepare(arena, r as usize + 1);
    let cap_u = sc.caps[root as usize];
    let k = objective_child_flat(arena, root);
    let others: Vec<ViewId> = arena
        .children(k)
        .iter()
        .copied()
        .filter(|&c| c < CHILD_BACK)
        .collect();
    let hi0 = cap_u + others.iter().map(|&w| sc.caps[w as usize]).sum::<f64>();
    let mut feasible = |omega: f64| -> bool {
        sc.clear();
        let mut sum = 0.0;
        for &w in &others {
            match f_plus_flat(arena, w, r, omega, sc) {
                Some(fp) => sum += fp,
                None => return false,
            }
        }
        (omega - sum).max(0.0) <= cap_u
    };
    if hi0 == 0.0 || feasible(hi0) {
        return hi0;
    }
    let (mut lo, mut hi) = (0.0f64, hi0);
    let tol = crate::tree_bound::BISECT_REL_TOL * hi0.max(1.0);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Minimum total batch work — `Σ arena.size(root)` over the roots, the
/// logical (pre-dedup) node count the `f±` probes walk per ω pass —
/// below which [`solve_special_flat`] keeps the `t` batch scalar.
///
/// One work unit costs the batch roughly 50–100ns (memoised `f±` over
/// an interned node across all bisection probes, measured on the
/// `view-eval-t` workload), so this threshold is ~1.5ms of scalar batch
/// time — the order of what spawning workers and laying out their
/// per-thread [`FlatScratch`] tables costs end to end. Below it,
/// threading can only lose. Measured on the `threaded-scaling` bench;
/// see `specs/PERF.md`.
pub const FLAT_T_PARALLEL_MIN_WORK: u64 = 20_000;

/// Chunks handed out per worker in [`t_batch_flat`]: enough slack for
/// work stealing to smooth out unevenly sized balls without shrinking
/// chunks to per-root granularity (the PR-5 mistake in reverse).
const PARALLEL_CHUNKS_PER_WORKER: usize = 4;

/// Evaluates `t_u` for every root, with exactly `workers` threads
/// pulling **size-weighted contiguous chunks** from a shared queue.
///
/// Chunk boundaries are chosen so each chunk carries roughly
/// `Σ size / (workers × 4)` units of interned-subtree work (the arena's
/// logical subtree size is the cost proxy for one ω probe), so a few
/// giant balls no longer serialise a whole equal-*count* shard behind
/// one worker. Each worker owns a private [`FlatScratch`] for its whole
/// lifetime — workers share only the read-only arena and disjoint
/// output slices, so there is no false sharing of memo lines.
///
/// Results are bit-identical for every `workers ≥ 1` (each `t_u` is a
/// pure function of `(arena, root)`); `workers == 1` runs the plain
/// scalar loop. [`solve_special_flat`] caps `workers` at the host's
/// available parallelism and the [`FLAT_T_PARALLEL_MIN_WORK`] threshold;
/// this helper deliberately does not, so tests and benches can exercise
/// the parallel partitioning on any host.
pub fn t_batch_flat(arena: &ViewArena, roots: &[ViewId], big_r: usize, workers: usize) -> Vec<f64> {
    t_batch_flat_telemetry(arena, roots, big_r, workers).0
}

/// Memo and chunk-queue telemetry of one `t` batch, aggregated across
/// its workers (part of [`FlatSolveTrace`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchTelemetry {
    /// Memo probes answered from a worker's table.
    pub memo_hits: u64,
    /// Memo probes that recomputed and stamped a slot.
    pub memo_misses: u64,
    /// Evaluations that bypassed the table (tiny subtree or level 0).
    pub memo_skips: u64,
    /// Worker threads that ran (1 for the scalar path).
    pub workers: u32,
    /// Chunks queued (1 for the scalar path).
    pub chunks: u32,
    /// Chunks pulled by the busiest worker — `chunks / workers` when
    /// the queue balanced perfectly, `chunks` when one worker ate
    /// everything.
    pub max_chunk_pulls: u32,
}

/// [`t_batch_flat`] plus the batch's [`BatchTelemetry`] — same
/// partitioning, same bit-identical outputs.
pub fn t_batch_flat_telemetry(
    arena: &ViewArena,
    roots: &[ViewId],
    big_r: usize,
    workers: usize,
) -> (Vec<f64>, BatchTelemetry) {
    let n = roots.len();
    if workers <= 1 || n <= 1 {
        let mut sc = FlatScratch::default();
        let out = roots
            .iter()
            .map(|&root| t_from_arena(arena, root, big_r, &mut sc))
            .collect();
        let tel = BatchTelemetry {
            memo_hits: sc.memo_hits,
            memo_misses: sc.memo_misses,
            memo_skips: sc.memo_skips,
            workers: 1,
            chunks: 1,
            max_chunk_pulls: 1,
        };
        return (out, tel);
    }

    // Size-weighted contiguous chunk boundaries.
    let total: u64 = roots.iter().map(|&root| arena.size(root)).sum();
    let n_chunks = (workers * PARALLEL_CHUNKS_PER_WORKER).min(n).max(1);
    let target = (total / n_chunks as u64).max(1);
    let mut bounds = vec![0usize];
    let mut acc = 0u64;
    for (i, &root) in roots.iter().enumerate() {
        acc += arena.size(root);
        if acc >= target && i + 1 < n {
            bounds.push(i + 1);
            acc = 0;
        }
    }
    bounds.push(n);

    let mut out = vec![0.0f64; n];
    // (memo_hits, memo_misses, memo_skips, chunk pulls) per worker.
    let worker_tel = std::sync::Mutex::new(Vec::<(u64, u64, u64, u32)>::new());
    {
        // Queue of (first root index, disjoint output slice) tasks.
        let mut tasks: Vec<(usize, &mut [f64])> = Vec::with_capacity(bounds.len() - 1);
        let mut rest: &mut [f64] = &mut out;
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            tasks.push((w[0], head));
            rest = tail;
        }
        let queue = std::sync::Mutex::new(tasks);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| {
                    // One scratch per worker thread, laid out once and
                    // reused across every chunk the worker pulls.
                    let mut sc = FlatScratch::default();
                    let mut pulls = 0u32;
                    while let Some((start, slice)) = queue.lock().unwrap().pop() {
                        pulls += 1;
                        for (off, slot) in slice.iter_mut().enumerate() {
                            *slot = t_from_arena(arena, roots[start + off], big_r, &mut sc);
                        }
                    }
                    worker_tel.lock().unwrap().push((
                        sc.memo_hits,
                        sc.memo_misses,
                        sc.memo_skips,
                        pulls,
                    ));
                });
            }
        })
        .expect("flat t workers");
    }
    let mut tel = BatchTelemetry {
        workers: workers as u32,
        chunks: (bounds.len() - 1) as u32,
        ..BatchTelemetry::default()
    };
    for (h, m, s, pulls) in worker_tel.into_inner().unwrap() {
        tel.memo_hits += h;
        tel.memo_misses += m;
        tel.memo_skips += s;
        tel.max_chunk_pulls = tel.max_chunk_pulls.max(pulls);
    }
    (out, tel)
}

// ---- the protocol ----------------------------------------------------

#[cfg(any(test, feature = "legacy-tree"))]
impl Protocol for DistMaxMin {
    type State = DistState;
    type Message = Msg;

    fn rounds(&self) -> usize {
        rounds_needed(self.big_r)
    }

    fn init(&self, node: &NodeInfo) -> DistState {
        DistState {
            view: ViewTree::depth_zero(node),
            t: None,
            flood: f64::INFINITY,
            g_plus: Vec::new(),
            g_minus: Vec::new(),
            x: None,
        }
    }

    fn round(
        &self,
        st: &mut DistState,
        node: &NodeInfo,
        round: usize,
        inbox: &mut [Option<Msg>],
        outbox: &mut [Option<Msg>],
    ) {
        let a = self.phase_len(); // phase-1 sends: rounds [0, a)
        let b = 2 * a; // phase-2 sends: rounds [a, 2a); phase 3: [2a, 3a)
        let is_agent = node.kind == NodeKind::Agent;
        let r = self.r();

        if round < a {
            // ---- phase 1: view gathering ----
            if round > 0 {
                let mut views = take_views(inbox);
                st.view = ViewTree::from_inbox(&st.view, &mut views);
            }
            for (p, slot) in outbox.iter_mut().enumerate() {
                *slot = Some(Msg::View(p as u32, st.view.clone()));
            }
            return;
        }

        if round == a {
            // Final view absorb; agents compute t and seed the flood.
            let mut views = take_views(inbox);
            st.view = ViewTree::from_inbox(&st.view, &mut views);
            if is_agent {
                let t = t_from_view(&st.view, self.big_r);
                st.t = Some(t);
                st.flood = t;
            }
        }

        if round < b {
            // ---- phase 2: min-flooding of t ----
            if round > a {
                for m in inbox.iter().flatten() {
                    if let Msg::Val(v) = m {
                        st.flood = st.flood.min(*v);
                    }
                }
            }
            if st.flood.is_finite() {
                for slot in outbox.iter_mut() {
                    *slot = Some(Msg::Val(st.flood));
                }
            }
            return;
        }

        // ---- phase 3: g± exchanges ----
        let step = round - b; // 0-based within phase 3
        let d = step / 4;
        match step % 4 {
            0 => {
                if is_agent {
                    if d == 0 {
                        // Final flood absorb: s_v.
                        for m in inbox.iter().flatten() {
                            if let Msg::Val(v) = m {
                                st.flood = st.flood.min(*v);
                            }
                        }
                        // (12): g⁺_{v,0} is local.
                        st.g_plus.push(cap_of(&st.view));
                    } else {
                        // (14): g⁺_{v,d} from the partner products
                        // a_{i,n}·g⁻_{n,d−1} relayed by the constraints.
                        let mut m = f64::INFINITY;
                        for (p, kind) in node.ports.iter().enumerate() {
                            if kind.neighbor_kind != NodeKind::Constraint {
                                continue;
                            }
                            let recv = match &inbox[p] {
                                Some(Msg::Val(v)) => *v,
                                _ => panic!("missing constraint relay"),
                            };
                            let a_own = kind.coef.expect("agents know coefficients");
                            m = m.min((1.0 - recv) / a_own);
                        }
                        st.g_plus.push(m);
                    }
                    // Send g⁺_{v,d} to the objective.
                    let kp = objective_port(node);
                    outbox[kp] = Some(Msg::Val(st.g_plus[d]));
                }
            }
            1 => {
                if node.kind == NodeKind::Objective {
                    // Reply to each member the sum of the *others*.
                    let vals: Vec<f64> = inbox
                        .iter()
                        .map(|m| match m {
                            Some(Msg::Val(v)) => *v,
                            _ => panic!("objective missing a member's g⁺"),
                        })
                        .collect();
                    for (p, slot) in outbox.iter_mut().enumerate() {
                        let sum: f64 = vals
                            .iter()
                            .enumerate()
                            .filter(|(q, _)| *q != p)
                            .map(|(_, v)| v)
                            .sum();
                        *slot = Some(Msg::Val(sum));
                    }
                }
            }
            2 => {
                if is_agent {
                    // (13): g⁻_{v,d} from the objective's reply.
                    let kp = objective_port(node);
                    let sum = match &inbox[kp] {
                        Some(Msg::Val(v)) => *v,
                        _ => panic!("missing objective reply"),
                    };
                    st.g_minus.push((st.flood - sum).max(0.0));
                    // Ship partner products through the constraints
                    // (not needed after the last level).
                    if d < r {
                        for (p, kind) in node.ports.iter().enumerate() {
                            if kind.neighbor_kind != NodeKind::Constraint {
                                continue;
                            }
                            let a_own = kind.coef.expect("agents know coefficients");
                            outbox[p] = Some(Msg::Val(a_own * st.g_minus[d]));
                        }
                    }
                }
            }
            3 => {
                if node.kind == NodeKind::Constraint {
                    // Relay each side's product to the other side.
                    debug_assert_eq!(node.degree(), 2);
                    for p in 0..2 {
                        if let Some(Msg::Val(v)) = &inbox[1 - p] {
                            outbox[p] = Some(Msg::Val(*v));
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    fn finish(&self, st: &mut DistState, node: &NodeInfo, inbox: &mut [Option<Msg>]) {
        if node.kind != NodeKind::Agent {
            return;
        }
        let r = self.r();
        // The last objective reply (level r) arrives here.
        let kp = objective_port(node);
        let sum = match &inbox[kp] {
            Some(Msg::Val(v)) => *v,
            _ => panic!("missing final objective reply"),
        };
        st.g_minus.push((st.flood - sum).max(0.0));
        debug_assert_eq!(st.g_plus.len(), r + 1);
        debug_assert_eq!(st.g_minus.len(), r + 1);
        // (18) — written exactly as the centralized `smoothing::output`
        // (multiply by the reciprocal) so results are bit-identical.
        let total: f64 = (0..=r).map(|d| st.g_plus[d] + st.g_minus[d]).sum();
        st.x = Some(total * (1.0 / (2.0 * self.big_r as f64)));
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// The output assignment (18).
    pub solution: Solution,
    /// Per-agent `t_u`.
    pub t: Vec<f64>,
    /// Per-agent smoothed bound `s_v`.
    pub s: Vec<f64>,
    /// Round/message/byte accounting.
    pub stats: RunStats,
}

/// Runs the protocol on a special-form instance over the legacy
/// `ViewTree` message alphabet.
///
/// Legacy tree path: available to tests and under the `legacy-tree`
/// feature only (ViewTree deprecation step 2; see ROADMAP.md). It
/// remains the reference the flat arena path is cross-checked against
/// bitwise in `tests/flat_views.rs`.
#[cfg(any(test, feature = "legacy-tree"))]
pub fn solve_distributed(sf: &SpecialForm, big_r: usize) -> DistributedOutcome {
    let net = Network::new(sf.instance());
    let RunResult { states, stats } = engine::run(&net, &DistMaxMin::new(big_r));
    let n = sf.n_agents();
    let mut x = Vec::with_capacity(n);
    let mut t = Vec::with_capacity(n);
    let mut s = Vec::with_capacity(n);
    for st in &states[..n] {
        x.push(st.x.expect("agent produced output"));
        t.push(st.t.expect("agent computed t"));
        s.push(st.flood);
    }
    DistributedOutcome {
        solution: Solution::from_vec(x),
        t,
        s,
        stats,
    }
}

/// The §5 algorithm rebuilt on the **flat view arena** — the faithful
/// distributed semantics at a fraction of the simulation cost:
///
/// 1. **Phase 1** uses [`gather_views_flat`]: payloads are interned ids,
///    so per-round work is `O(Σ degree)` instead of the ball size, and
///    the per-agent bounds `t_u` are then evaluated over the arena roots
///    by [`t_batch_flat`] — with up to `threads` workers pulling
///    size-weighted chunks, engaged only above
///    [`FLAT_T_PARALLEL_MIN_WORK`] and capped at the host's available
///    parallelism — with the `f±` recursions memoised per shared
///    subtree ([`t_from_arena`]).
/// 2. **Phases 2–3** are scalar recursions; they are evaluated directly
///    (the same operations in the same order as the message protocol)
///    while the protocol's exact per-round message/byte schedule is
///    reproduced for the accounting.
///
/// Outputs (`x`, `t`, `s`) **and** the logical `RunStats` accounting are
/// bit-identical to the legacy `solve_distributed` (tests / the
/// `legacy-tree` feature); on top of that the stats carry the arena's
/// dedup counters (`interned_nodes`, `arena_bytes`, `peak_arena_bytes`).
/// Asserted across the generator catalog in `tests/flat_views.rs`.
pub fn solve_special_flat(
    sf: &SpecialForm,
    big_r: usize,
    threads: usize,
) -> (SpecialRun, RunStats) {
    solve_special_flat_impl(sf, big_r, threads, None)
}

/// [`solve_special_flat`] plus its [`FlatSolveTrace`]: the same solve —
/// bit-identical outputs, asserted catalog-wide — with per-phase wall
/// times and the `t` batch's memo/chunk telemetry filled in.
pub fn solve_special_flat_traced(
    sf: &SpecialForm,
    big_r: usize,
    threads: usize,
) -> (SpecialRun, RunStats, FlatSolveTrace) {
    let mut trace = FlatSolveTrace::default();
    let (run, stats) = solve_special_flat_impl(sf, big_r, threads, Some(&mut trace));
    (run, stats, trace)
}

/// Per-phase wall times and hot-path counters of one flat solve.
///
/// Phase durations are measured with the monotonic clock and cover
/// disjoint intervals, so `gather_ns + t_eval_ns + flood_ns + g_ns ≤
/// total_ns` (the remainder is glue: network construction, output
/// assembly). All fields are zero for untraced solves — tracing is
/// opt-in per call, and the untraced path takes no timestamps at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlatSolveTrace {
    /// Phase 1a: flat view gathering (`gather_views_flat`).
    pub gather_ns: u64,
    /// Phase 1b: the `t_u` batch over the arena roots.
    pub t_eval_ns: u64,
    /// Phase 2: the `s_v` min-flood.
    pub flood_ns: u64,
    /// Phase 3: `g±` tables and output assembly.
    pub g_ns: u64,
    /// Whole-solve wall time.
    pub total_ns: u64,
    /// Memo/chunk-queue telemetry of the `t` batch.
    pub batch: BatchTelemetry,
}

impl FlatSolveTrace {
    /// The phase breakdown as `(name, nanoseconds)` pairs in execution
    /// order — the span hook the observability layer hangs child spans
    /// off (phases run back-to-back, so cumulative offsets position
    /// them inside the enclosing `execute` span).
    pub fn phase_spans(&self) -> [(&'static str, u64); 4] {
        [
            ("gather", self.gather_ns),
            ("t_eval", self.t_eval_ns),
            ("flood", self.flood_ns),
            ("g", self.g_ns),
        ]
    }
}

fn solve_special_flat_impl(
    sf: &SpecialForm,
    big_r: usize,
    threads: usize,
    mut trace: Option<&mut FlatSolveTrace>,
) -> (SpecialRun, RunStats) {
    assert!(big_r >= 2, "the paper requires R ≥ 2");
    // One monotonic timestamp per phase boundary, taken only when the
    // caller asked for a trace — the untraced hot path is unchanged.
    let mut last_tick = trace.as_ref().map(|_| std::time::Instant::now());
    let t0 = last_tick;
    let mut lap = move || -> u64 {
        let now = std::time::Instant::now();
        let ns = now.duration_since(last_tick.unwrap()).as_nanos() as u64;
        last_tick = Some(now);
        ns
    };
    let r = big_r - 2;
    let a_len = 4 * r + 2;
    let net = Network::new(sf.instance());
    let n = sf.n_agents();

    // ---- phase 1: flat gather + threaded t over the arena roots ----
    //
    // `threads` is an upper bound: the batch only engages real workers
    // when (a) the host has that much parallelism to give and (b) the
    // batch carries at least FLAT_T_PARALLEL_MIN_WORK units of logical
    // subtree work — below that, thread + scratch setup costs more than
    // the parallelism wins back, and the batch stays scalar.
    let FlatViews {
        arena,
        roots,
        mut stats,
    } = gather_views_flat(&net, a_len);
    if let Some(tr) = trace.as_deref_mut() {
        tr.gather_ns = lap();
    }
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    let work: u64 = roots[..n].iter().map(|&root| arena.size(root)).sum();
    let workers = if work < FLAT_T_PARALLEL_MIN_WORK {
        1
    } else {
        threads.max(1).min(avail)
    };
    let (t, batch_tel) = t_batch_flat_telemetry(&arena, &roots[..n], big_r, workers);
    if let Some(tr) = trace.as_deref_mut() {
        tr.t_eval_ns = lap();
        tr.batch = batch_tel;
    }

    // ---- phase 2: min-flood of t (same relaxation order as the
    // protocol; senders are exactly the nodes holding a finite value) --
    let graph = net.graph();
    let n_nodes = graph.n_nodes();
    let mut cur = vec![f64::INFINITY; n_nodes];
    cur[..n].copy_from_slice(&t);
    let mut next = vec![0.0f64; n_nodes];
    for _ in 0..a_len {
        let mut msgs = 0u64;
        for (x, v) in cur.iter().enumerate() {
            if v.is_finite() {
                msgs += graph.neighbors(x as u32).len() as u64;
            }
        }
        stats.messages += msgs;
        stats.bytes += 8 * msgs;
        stats.messages_per_round.push(msgs);
        stats.bytes_per_round.push(8 * msgs);
        for x in 0..n_nodes as u32 {
            let mut m = cur[x as usize];
            for adj in graph.neighbors(x) {
                m = m.min(cur[adj.to as usize]);
            }
            next[x as usize] = m;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let s: Vec<f64> = cur[..n].to_vec();
    if let Some(tr) = trace.as_deref_mut() {
        tr.flood_ns = lap();
    }

    // ---- phase 3: g± values via the centralized recursions (proven
    // bit-identical to the message protocol), counts per its schedule --
    let inst = sf.instance();
    let obj_ports: u64 = inst
        .objectives()
        .map(|k| inst.objective_row(k).len() as u64)
        .sum();
    let cons_ports = 2 * inst.n_constraints() as u64;
    for step in 0..a_len {
        let d = step / 4;
        let msgs = match step % 4 {
            0 => n as u64,            // each agent → its objective
            1 => obj_ports,           // each objective → every member
            _ if d < r => cons_ports, // agents → constraints, then relays
            _ => 0,
        };
        stats.messages += msgs;
        stats.bytes += 8 * msgs;
        stats.messages_per_round.push(msgs);
        stats.bytes_per_round.push(8 * msgs);
    }
    stats.rounds = rounds_needed(big_r);

    let g = smoothing::g_tables(sf, &s, r);
    let x = smoothing::output(sf, &g, big_r);
    if let Some(tr) = trace {
        tr.g_ns = lap();
        tr.total_ns = t0.unwrap().elapsed().as_nanos() as u64;
    }
    (SpecialRun { x, t, s, g }, stats)
}

/// The distributed solve on the flat arena path: outputs and accounting
/// bit-identical to the legacy `solve_distributed`, plus dedup counters
/// in `stats`. `threads` bounds the
/// workers of the per-agent `t_u` batch over the arena roots (outputs
/// are bit-identical across thread counts; see [`solve_special_flat`]
/// for when threading actually engages).
pub fn solve_distributed_flat(
    sf: &SpecialForm,
    big_r: usize,
    threads: usize,
) -> DistributedOutcome {
    let (run, stats) = solve_special_flat(sf, big_r, threads);
    DistributedOutcome {
        solution: run.x,
        t: run.t,
        s: run.s,
        stats,
    }
}

/// [`solve_distributed_flat`] plus its [`FlatSolveTrace`] (bit-identical
/// outputs; see [`solve_special_flat_traced`]).
pub fn solve_distributed_flat_traced(
    sf: &SpecialForm,
    big_r: usize,
    threads: usize,
) -> (DistributedOutcome, FlatSolveTrace) {
    let (run, stats, trace) = solve_special_flat_traced(sf, big_r, threads);
    (
        DistributedOutcome {
            solution: run.x,
            t: run.t,
            s: run.s,
            stats,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoothing::solve_special;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};

    fn sf(seed: u64) -> SpecialForm {
        SpecialForm::new(random_special_form(&SpecialFormConfig::default(), seed)).unwrap()
    }

    #[test]
    fn distributed_matches_centralized_bitwise() {
        for seed in 0..4 {
            let s = sf(seed);
            for big_r in [2, 3, 4] {
                let central = solve_special(&s, big_r, 1);
                let dist = solve_distributed(&s, big_r);
                for v in 0..s.n_agents() {
                    assert_eq!(
                        dist.t[v].to_bits(),
                        central.t[v].to_bits(),
                        "t: seed {seed} R {big_r} agent {v}"
                    );
                    assert_eq!(
                        dist.s[v].to_bits(),
                        central.s[v].to_bits(),
                        "s: seed {seed} R {big_r} agent {v}"
                    );
                    assert_eq!(
                        dist.solution.as_slice()[v].to_bits(),
                        central.x.as_slice()[v].to_bits(),
                        "x: seed {seed} R {big_r} agent {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_count_is_constant_in_network_size() {
        for big_r in [2, 3] {
            let mut rounds = Vec::new();
            for n_obj in [10, 40] {
                let s = SpecialForm::new(random_special_form(
                    &SpecialFormConfig {
                        n_objectives: n_obj,
                        ..SpecialFormConfig::default()
                    },
                    0,
                ))
                .unwrap();
                let out = solve_distributed(&s, big_r);
                rounds.push(out.stats.rounds);
            }
            assert_eq!(rounds[0], rounds[1], "locality: rounds independent of n");
            assert_eq!(rounds[0], rounds_needed(big_r));
        }
    }

    #[test]
    fn messages_scale_linearly_with_size() {
        let small = solve_distributed(
            &SpecialForm::new(random_special_form(
                &SpecialFormConfig {
                    n_objectives: 10,
                    extra_constraints: 5,
                    ..SpecialFormConfig::default()
                },
                1,
            ))
            .unwrap(),
            3,
        );
        let large = solve_distributed(
            &SpecialForm::new(random_special_form(
                &SpecialFormConfig {
                    n_objectives: 40,
                    extra_constraints: 20,
                    ..SpecialFormConfig::default()
                },
                1,
            ))
            .unwrap(),
            3,
        );
        let ratio = large.stats.messages as f64 / small.stats.messages as f64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4x nodes → ~4x messages, got ratio {ratio}"
        );
    }

    #[test]
    fn cycle_distributed_is_optimal() {
        let s = SpecialForm::new(cycle_special(8, 1.0)).unwrap();
        let out = solve_distributed(&s, 4);
        for v in out.solution.as_slice() {
            assert!((v - 0.5).abs() < 1e-9);
        }
        assert!(out.solution.is_feasible(s.instance(), 1e-9));
    }

    #[test]
    fn flat_path_is_bitwise_identical_to_legacy() {
        for seed in 0..3 {
            let s = sf(seed);
            for big_r in [2, 3, 4] {
                let legacy = solve_distributed(&s, big_r);
                for threads in [1, 4] {
                    let flat = solve_distributed_flat(&s, big_r, threads);
                    for v in 0..s.n_agents() {
                        assert_eq!(flat.t[v].to_bits(), legacy.t[v].to_bits());
                        assert_eq!(flat.s[v].to_bits(), legacy.s[v].to_bits());
                        assert_eq!(
                            flat.solution.as_slice()[v].to_bits(),
                            legacy.solution.as_slice()[v].to_bits(),
                            "seed {seed} R {big_r} threads {threads} agent {v}"
                        );
                    }
                    // The logical accounting is reproduced exactly; only
                    // the dedup counters are new.
                    assert_eq!(flat.stats.rounds, legacy.stats.rounds);
                    assert_eq!(flat.stats.messages, legacy.stats.messages);
                    assert_eq!(flat.stats.bytes, legacy.stats.bytes);
                    assert_eq!(
                        flat.stats.messages_per_round,
                        legacy.stats.messages_per_round
                    );
                    assert_eq!(flat.stats.bytes_per_round, legacy.stats.bytes_per_round);
                    assert!(flat.stats.interned_nodes > 0);
                    assert!(flat.stats.dedup_ratio() > 1.0);
                }
            }
        }
    }

    #[test]
    fn traced_solve_is_bit_identical_and_phases_are_coherent() {
        let s = sf(2);
        for big_r in [2, 3] {
            for threads in [1, 4] {
                let (plain, stats) = solve_special_flat(&s, big_r, threads);
                let (traced, tstats, tr) = solve_special_flat_traced(&s, big_r, threads);
                for v in 0..s.n_agents() {
                    assert_eq!(traced.t[v].to_bits(), plain.t[v].to_bits());
                    assert_eq!(traced.s[v].to_bits(), plain.s[v].to_bits());
                    assert_eq!(
                        traced.x.as_slice()[v].to_bits(),
                        plain.x.as_slice()[v].to_bits(),
                        "R {big_r} threads {threads} agent {v}"
                    );
                }
                assert_eq!(stats, tstats, "accounting must not depend on tracing");
                // Phases cover disjoint intervals of the span.
                assert!(tr.total_ns > 0);
                let phase_sum = tr.gather_ns + tr.t_eval_ns + tr.flood_ns + tr.g_ns;
                assert!(
                    phase_sum <= tr.total_ns,
                    "phases {phase_sum} > total {}",
                    tr.total_ns
                );
                // The batch ran and its memo counters saw traffic.
                assert!(tr.batch.workers >= 1 && tr.batch.chunks >= 1);
                assert!(tr.batch.memo_hits + tr.batch.memo_misses + tr.batch.memo_skips > 0);
            }
        }
    }

    #[test]
    fn t_from_arena_matches_t_from_view() {
        use mmlp_net::{gather_views, gather_views_flat};
        let s = sf(6);
        let net = Network::new(s.instance());
        for big_r in [2, 3] {
            let depth = 4 * (big_r - 2) + 2;
            let (views, _) = gather_views(&net, depth);
            let flat = gather_views_flat(&net, depth);
            let mut sc = FlatScratch::default();
            for (v, view) in views.iter().enumerate().take(s.n_agents()) {
                let legacy = t_from_view(view, big_r);
                let arena = t_from_arena(&flat.arena, flat.roots[v], big_r, &mut sc);
                assert_eq!(legacy.to_bits(), arena.to_bits(), "agent {v} R {big_r}");
            }
        }
    }

    #[test]
    fn t_from_view_matches_tree_bound() {
        use crate::tree_bound::{Scratch, TreeBound};
        use mmlp_net::gather_views;
        let s = sf(9);
        for big_r in [2, 3] {
            let r = big_r - 2;
            let net = Network::new(s.instance());
            let (views, _) = gather_views(&net, 4 * r + 2);
            let tb = TreeBound::new(&s, big_r);
            let mut sc = Scratch::default();
            for v in s.instance().agents() {
                let direct = tb.t(v, &mut sc);
                let via_view = t_from_view(&views[v.idx()], big_r);
                assert_eq!(direct.to_bits(), via_view.to_bits(), "agent {v} R {big_r}");
            }
        }
    }
}
