//! §3: unfolding (universal covers) and port-numbering
//! indistinguishability.
//!
//! The unfolding of `G` rooted at `r` has the non-backtracking walks from
//! `r` as nodes. Two facts drive the paper:
//!
//! 1. A deterministic local algorithm in the port-numbering model must
//!    produce the same output at any two nodes whose radius-`D` views
//!    (balls in the unfolding, with port labels and coefficients) are
//!    equal — it *cannot distinguish them* ([`views_equal`]).
//! 2. Feasible solutions transfer both ways between `G` and its
//!    unfolding (remarks 6–8 of §3), so proving a guarantee on trees
//!    suffices.
//!
//! This module provides the direct (no message passing) view comparison
//! used by the lower-bound experiment T5 — views are interned into a
//! hash-consed [`ViewArena`] by the memoising [`ViewInterner`], so
//! equality is a root-id compare instead of a walk of the (exponential)
//! ball — plus helpers for building the explicit truncated unfolding of
//! an instance.

use mmlp_instance::{Adj, CommGraph, Instance, InstanceBuilder, Node};
use mmlp_net::{Network, ViewArena, ViewId, CHILD_BACK, CHILD_CUT};
use std::collections::HashMap;

/// Builds interned flat views of one instance's nodes directly from the
/// topology — no message passing, no per-call [`CommGraph`] rebuild.
///
/// The view of a node `(x, entered-through-port b, budget d)` in the
/// unfolding depends only on that triple, never on the walk history, so
/// the interner memoises on it: building the radius-`d` views of *all*
/// nodes costs `O(n · Δ · d)` interned nodes, where the recursive
/// comparison it replaces walked the (exponential) ball per query.
///
/// Views interned into the same [`ViewArena`] — from this instance or
/// any other — are equal **iff their ids are equal**, which is what
/// turns the lower-bound experiment's all-pairs view comparison into an
/// integer compare per pair.
pub struct ViewInterner {
    net: Network,
    /// (flat node, incoming port + 1 or 0, remaining depth) → id.
    memo: HashMap<(u32, u32, u32), ViewId>,
    /// Same key → **canonical** (port-order-independent) id, kept
    /// separate because the two forms intern different trees.
    canon_memo: HashMap<(u32, u32, u32), ViewId>,
    /// Token of the arena the memoised ids belong to — ids are
    /// meaningless in any other arena, so the memo is dropped when a
    /// different one is handed in.
    arena_token: Option<u64>,
}

impl ViewInterner {
    /// Prepares the interner for an instance.
    pub fn new(inst: &Instance) -> Self {
        ViewInterner {
            net: Network::new(inst),
            memo: HashMap::new(),
            canon_memo: HashMap::new(),
            arena_token: None,
        }
    }

    /// Interns the radius-`depth` view of `node` into `arena`.
    ///
    /// The memo is tied to one arena at a time: passing a different
    /// arena than the previous call re-interns from scratch (cached ids
    /// would index the old arena).
    pub fn intern(&mut self, arena: &mut ViewArena, node: Node, depth: usize) -> ViewId {
        self.bind(arena);
        let flat = self.net.graph().index(node);
        self.rec(arena, flat, u32::MAX, depth as u32)
    }

    /// Interns the **canonical, port-order-independent** form of the
    /// radius-`depth` view of `node`: at every level the ports are
    /// re-ordered by `(neighbour kind, coefficient bits, canonical child
    /// id)` before interning, so two nodes receive the same id **iff**
    /// their views are isomorphic as unordered coefficient-labelled
    /// trees.
    ///
    /// Canonicality is inductive: children are interned (canonically)
    /// first, so equal subtrees carry equal ids, and sorting a port
    /// multiset by any total order over `(kind, coef, id)` yields the
    /// same sequence for isomorphic multisets. Coefficients are compared
    /// by bit pattern, which equals value equality here (validated
    /// strictly positive — no `-0.0`/NaN aliases).
    ///
    /// Port-permutation-invariant local algorithms — this paper's is
    /// one, since it only takes sums and minima over port sets — must
    /// produce identical outputs on nodes with equal canonical ids. The
    /// lower-bound experiment T5 uses this to match interior agents of
    /// the tree gadget with agents of the regular gadget even though the
    /// two generators order their ports differently. (The impossibility
    /// argument itself uses the stronger port-exact [`views_equal`].)
    ///
    /// Canonical ids refine [`canonical_view_code`] equality: the ids
    /// keep each port's neighbour kind at `Cut`/`Back` markers, which
    /// the string code drops.
    pub fn intern_canonical(&mut self, arena: &mut ViewArena, node: Node, depth: usize) -> ViewId {
        self.bind(arena);
        let flat = self.net.graph().index(node);
        self.rec_canon(arena, flat, u32::MAX, depth as u32)
    }

    /// Applies a §1.3 dynamic coefficient edit in place: the agent-known
    /// coefficient of the edge `{v, i}` becomes `coef` and both memos are
    /// dropped (cached ids may describe views containing the old value;
    /// re-interning is ball-local, so the next [`ViewInterner::intern`]
    /// pass over the dirty agents rebuilds only what the edit reaches —
    /// no O(n) [`Network`] reconstruction).
    ///
    /// Panics when `{v, i}` is not an edge of the underlying instance.
    pub fn set_constraint_coef(
        &mut self,
        i: mmlp_instance::ConstraintId,
        v: mmlp_instance::AgentId,
        coef: f64,
    ) {
        let vf = self.net.graph().agent_index(v);
        let cf = self.net.graph().constraint_index(i);
        let port = self
            .net
            .graph()
            .neighbors(vf)
            .iter()
            .position(|adj| adj.to == cf)
            .expect("{v, i} must be an edge");
        self.net.set_agent_coef(vf, port, coef);
        self.memo.clear();
        self.canon_memo.clear();
    }

    /// Ties both memos to `arena`, dropping them when it changed.
    fn bind(&mut self, arena: &ViewArena) {
        if self.arena_token != Some(arena.token()) {
            self.memo.clear();
            self.canon_memo.clear();
            self.arena_token = Some(arena.token());
        }
    }

    /// `back` is the port at `x` towards the parent (`u32::MAX` at the
    /// root).
    fn rec(&mut self, arena: &mut ViewArena, x: u32, back: u32, depth: u32) -> ViewId {
        let key = (x, back.wrapping_add(1), depth);
        if let Some(&id) = self.memo.get(&key) {
            return id;
        }
        let adjs: Vec<Adj> = self.net.graph().neighbors(x).to_vec();
        let children: Vec<u32> = adjs
            .iter()
            .enumerate()
            .map(|(port, adj)| {
                if port as u32 == back {
                    CHILD_BACK
                } else if depth == 0 {
                    CHILD_CUT
                } else {
                    self.rec(arena, adj.to, adj.port_at_to, depth - 1)
                }
            })
            .collect();
        let info = self.net.info(x);
        let port_kinds: Vec<_> = info.ports.iter().map(|p| p.neighbor_kind).collect();
        let coefs: Vec<f64> = info.ports.iter().filter_map(|p| p.coef).collect();
        let id = arena.intern(info.kind, &port_kinds, &coefs, &children);
        self.memo.insert(key, id);
        id
    }

    /// [`ViewInterner::rec`] with the ports in canonical order.
    fn rec_canon(&mut self, arena: &mut ViewArena, x: u32, back: u32, depth: u32) -> ViewId {
        let key = (x, back.wrapping_add(1), depth);
        if let Some(&id) = self.canon_memo.get(&key) {
            return id;
        }
        let adjs: Vec<Adj> = self.net.graph().neighbors(x).to_vec();
        let raw: Vec<u32> = adjs
            .iter()
            .enumerate()
            .map(|(port, adj)| {
                if port as u32 == back {
                    CHILD_BACK
                } else if depth == 0 {
                    CHILD_CUT
                } else {
                    self.rec_canon(arena, adj.to, adj.port_at_to, depth - 1)
                }
            })
            .collect();
        let info = self.net.info(x);
        // Canonical port order; the trailing original index only breaks
        // ties between ports whose (kind, coef, child) are identical —
        // interchangeable ports, so the result stays canonical.
        let mut order: Vec<(u8, u64, u32, usize)> = (0..adjs.len())
            .map(|p| {
                (
                    info.ports[p].neighbor_kind as u8,
                    info.ports[p].coef.map_or(0, f64::to_bits),
                    raw[p],
                    p,
                )
            })
            .collect();
        order.sort_unstable();
        let port_kinds: Vec<_> = order
            .iter()
            .map(|&(_, _, _, p)| info.ports[p].neighbor_kind)
            .collect();
        let coefs: Vec<f64> = order
            .iter()
            .filter_map(|&(_, _, _, p)| info.ports[p].coef)
            .collect();
        let children: Vec<u32> = order.iter().map(|&(_, _, c, _)| c).collect();
        let id = arena.intern(info.kind, &port_kinds, &coefs, &children);
        self.canon_memo.insert(key, id);
        id
    }
}

/// Are the radius-`depth` views of `a` in `inst_a` and `b` in `inst_b`
/// equal (same kinds, same port structure — own and per-port neighbour
/// classes — and same agent-known coefficients)?
///
/// Equal views make the two nodes indistinguishable to every
/// deterministic local algorithm with horizon ≤ `depth` in the
/// port-numbering model — the engine of the Theorem 1 lower bound.
///
/// Both views are interned into one shared [`ViewArena`] and compared
/// by root id. For bulk comparisons (the T5 experiment compares all
/// pairs), keep the [`ViewInterner`]s and the arena across calls — each
/// additional node costs amortised `O(Δ · depth)` instead of a ball
/// walk.
pub fn views_equal(inst_a: &Instance, a: Node, inst_b: &Instance, b: Node, depth: usize) -> bool {
    let mut arena = ViewArena::new();
    let ia = ViewInterner::new(inst_a).intern(&mut arena, a, depth);
    let ib = ViewInterner::new(inst_b).intern(&mut arena, b, depth);
    ia == ib
}

/// Builds the radius-`depth` chunk of the unfolding of `inst` rooted at
/// `root` as an explicit instance, together with the map *new node →
/// parent node of `G`* for agents.
///
/// Rows that are only partially inside the ball are kept with the agents
/// that made it into the ball (their other agents are beyond the
/// horizon), matching how local views truncate. The result is always a
/// forest-shaped instance (girth `None`).
pub fn unfolding_chunk(inst: &Instance, root: Node, depth: usize) -> (Instance, Vec<Node>) {
    let g = CommGraph::new(inst);

    // Walk states: (flat node, incoming port or none, remaining depth).
    // We materialise agents immediately; rows are materialised when
    // visited, collecting their member agent copies.
    struct Walker<'a> {
        inst: &'a Instance,
        g: &'a CommGraph,
        b: InstanceBuilder,
        parents: Vec<Node>,
        cons_rows: Vec<Vec<(mmlp_instance::AgentId, f64)>>,
        obj_rows: Vec<Vec<(mmlp_instance::AgentId, f64)>>,
    }

    impl Walker<'_> {
        /// Visits `flat` arriving through `back` (port at `flat`), with
        /// `depth` edges of budget left. For agents, returns the new id;
        /// the copy's rows are expanded recursively.
        fn visit_agent(
            &mut self,
            flat: u32,
            back: Option<u32>,
            depth: usize,
        ) -> mmlp_instance::AgentId {
            let id = self.b.add_agent();
            self.parents.push(self.g.node(flat));
            if depth == 0 {
                return id;
            }
            for (port, adj) in self.g.neighbors(flat).iter().enumerate() {
                if Some(port as u32) == back {
                    continue;
                }
                self.visit_row(adj, id, depth - 1);
            }
            id
        }

        /// Visits a row node reached from agent copy `from_id` (parent
        /// `from_flat`), creating the row with the traversing agent and
        /// all further agents within budget.
        fn visit_row(&mut self, adj: &Adj, from_id: mmlp_instance::AgentId, depth: usize) {
            let row_flat = adj.to;
            let back = adj.port_at_to;
            let mut members: Vec<(mmlp_instance::AgentId, f64)> = Vec::new();
            // Coefficient at a given port of this row.
            let coef_of = |port_at_row: u32| -> f64 {
                match self.g.node(row_flat) {
                    Node::Constraint(i) => self.inst.constraint_row(i)[port_at_row as usize].coef,
                    Node::Objective(k) => self.inst.objective_row(k)[port_at_row as usize].coef,
                    Node::Agent(_) => unreachable!("rows only"),
                }
            };
            members.push((from_id, coef_of(back)));
            if depth > 0 {
                for (port, nxt) in self.g.neighbors(row_flat).iter().enumerate() {
                    if port as u32 == back {
                        continue;
                    }
                    let agent_copy = self.visit_agent(nxt.to, Some(nxt.port_at_to), depth - 1);
                    members.push((agent_copy, coef_of(port as u32)));
                }
            }
            match self.g.node(row_flat) {
                Node::Constraint(_) => self.cons_rows.push(members),
                Node::Objective(_) => self.obj_rows.push(members),
                Node::Agent(_) => unreachable!(),
            }
        }
    }

    let mut w = Walker {
        inst,
        g: &g,
        b: InstanceBuilder::new(),
        parents: Vec::new(),
        cons_rows: Vec::new(),
        obj_rows: Vec::new(),
    };

    match root {
        Node::Agent(_) => {
            w.visit_agent(g.index(root), None, depth);
        }
        _ => {
            // Root at a row: materialise the row with all its agents.
            let row_flat = g.index(root);
            let mut members = Vec::new();
            if depth > 0 {
                for (port, nxt) in g.neighbors(row_flat).iter().enumerate() {
                    let agent_copy = w.visit_agent(nxt.to, Some(nxt.port_at_to), depth - 1);
                    let coef = match root {
                        Node::Constraint(i) => inst.constraint_row(i)[port].coef,
                        Node::Objective(k) => inst.objective_row(k)[port].coef,
                        Node::Agent(_) => unreachable!(),
                    };
                    members.push((agent_copy, coef));
                }
            }
            if !members.is_empty() {
                match root {
                    Node::Constraint(_) => w.cons_rows.push(members),
                    Node::Objective(_) => w.obj_rows.push(members),
                    Node::Agent(_) => unreachable!(),
                }
            }
        }
    }

    let mut b = w.b;
    let parents = w.parents;
    for row in &w.cons_rows {
        b.add_constraint(row).expect("chunk constraint");
    }
    for row in &w.obj_rows {
        b.add_objective(row).expect("chunk objective");
    }
    (b.build().expect("chunk builds"), parents)
}

/// A canonical, **port-order-independent** encoding of the radius-`depth`
/// view of a node: children are encoded recursively and sorted, so two
/// nodes get the same code iff their views are isomorphic as unordered
/// coefficient-labelled trees.
///
/// Port-permutation-invariant local algorithms — this paper's algorithm
/// is one, since it only takes sums and minima over port sets — must
/// produce (numerically) identical outputs on nodes with equal codes.
/// The lower-bound experiment T5 uses this to match interior agents of
/// the tree gadget with agents of the regular gadget even though the two
/// generators order their ports differently. (The paper's impossibility
/// argument uses the stronger port-exact [`views_equal`].)
pub fn canonical_view_code(inst: &Instance, node: Node, depth: usize) -> String {
    let g = CommGraph::new(inst);
    canonical_rec(inst, &g, g.index(node), None, depth)
}

fn canonical_rec(
    inst: &Instance,
    g: &CommGraph,
    x: u32,
    back_port: Option<u32>,
    depth: usize,
) -> String {
    let kind = match g.node(x) {
        Node::Agent(_) => 'a',
        Node::Constraint(_) => 'c',
        Node::Objective(_) => 'o',
    };
    // Edge coefficient towards each port, as known at this node (agents
    // know them; rows contribute the agent-side value via recursion, so
    // encoding only agent-side coefficients loses nothing).
    let coefs: Option<Vec<f64>> = match g.node(x) {
        Node::Agent(v) => {
            let mut c: Vec<f64> = inst.agent_constraints(v).iter().map(|e| e.coef).collect();
            c.extend(inst.agent_objectives(v).iter().map(|e| e.coef));
            Some(c)
        }
        _ => None,
    };
    let mut parts: Vec<String> = Vec::new();
    for (port, adj) in g.neighbors(x).iter().enumerate() {
        let coef = coefs.as_ref().map(|c| c[port]);
        let tag = |body: String| match coef {
            Some(c) => format!("{c:.17e}:{body}"),
            None => body,
        };
        if Some(port as u32) == back_port {
            parts.push(tag("^".to_string()));
        } else if depth == 0 {
            parts.push(tag("?".to_string()));
        } else {
            parts.push(tag(canonical_rec(
                inst,
                g,
                adj.to,
                Some(adj.port_at_to),
                depth - 1,
            )));
        }
    }
    parts.sort_unstable();
    let mut out = String::new();
    out.push(kind);
    out.push('(');
    out.push_str(&parts.join(","));
    out.push(')');
    out
}

/// Girth of the communication graph (`None` for forests) — re-exported
/// convenience for experiments that need to check the indistinguishability
/// radius.
pub fn girth(inst: &Instance) -> Option<u32> {
    CommGraph::new(inst).girth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::special::{cycle_special, path_special};
    use mmlp_instance::AgentId;

    #[test]
    fn a_node_is_always_self_equal() {
        let inst = cycle_special(5, 1.0);
        for depth in [0, 2, 7] {
            assert!(views_equal(
                &inst,
                Node::Agent(AgentId::new(0)),
                &inst,
                Node::Agent(AgentId::new(0)),
                depth
            ));
        }
    }

    #[test]
    fn cycles_of_different_lengths_are_indistinguishable() {
        let a = cycle_special(6, 1.0);
        let b = cycle_special(11, 1.0);
        // Even-type agents match even-type agents at any depth.
        assert!(views_equal(
            &a,
            Node::Agent(AgentId::new(0)),
            &b,
            Node::Agent(AgentId::new(0)),
            9
        ));
        // Even-type vs odd-type differ (mirrored ports) already at the
        // constraint structure.
        assert!(!views_equal(
            &a,
            Node::Agent(AgentId::new(0)),
            &b,
            Node::Agent(AgentId::new(1)),
            2
        ));
    }

    #[test]
    fn path_interior_matches_cycle_but_ends_do_not() {
        let cycle = cycle_special(8, 1.0);
        let path = path_special(8, 1.0);
        // Interior agent far from both ends.
        assert!(views_equal(
            &path,
            Node::Agent(AgentId::new(8)),
            &cycle,
            Node::Agent(AgentId::new(0)),
            4
        ));
        // The tied end has a different radius-2 structure.
        assert!(!views_equal(
            &path,
            Node::Agent(AgentId::new(0)),
            &cycle,
            Node::Agent(AgentId::new(0)),
            4
        ));
    }

    #[test]
    fn coefficients_break_view_equality() {
        // The agent's local input includes its coefficients, so views
        // with different a_iv differ already at depth 0.
        let a = cycle_special(6, 1.0);
        let b = cycle_special(6, 0.5);
        assert!(!views_equal(
            &a,
            Node::Agent(AgentId::new(0)),
            &b,
            Node::Agent(AgentId::new(0)),
            0
        ));
        // But a row node's local input carries no coefficients: its
        // depth-0 views agree.
        assert!(views_equal(
            &a,
            Node::Constraint(mmlp_instance::ConstraintId::new(0)),
            &b,
            Node::Constraint(mmlp_instance::ConstraintId::new(0)),
            0
        ));
    }

    #[test]
    fn unfolding_chunk_of_cycle_is_a_path() {
        let inst = cycle_special(3, 1.0); // total cycle length 12
        let (chunk, parents) = unfolding_chunk(&inst, Node::Agent(AgentId::new(0)), 5);
        // Radius-5 ball in the unfolded line: 11 nodes.
        let g = CommGraph::new(&chunk);
        assert_eq!(g.girth(), None, "chunks are forests");
        assert_eq!(g.n_nodes(), 11);
        assert_eq!(parents.len(), chunk.n_agents());
        assert_eq!(parents[0], Node::Agent(AgentId::new(0)));
    }

    #[test]
    fn unfolding_chunk_from_row_roots() {
        let inst = cycle_special(4, 1.0);
        let (chunk, _) = unfolding_chunk(
            &inst,
            Node::Objective(mmlp_instance::ObjectiveId::new(0)),
            3,
        );
        assert!(chunk.n_objectives() >= 1);
        assert_eq!(CommGraph::new(&chunk).girth(), None);
    }

    #[test]
    fn canonical_codes_identify_mirrored_views() {
        // Even- and odd-type cycle agents have mirrored port orders:
        // views_equal says no, the unordered canonical code says yes.
        let inst = cycle_special(6, 1.0);
        let a = canonical_view_code(&inst, Node::Agent(AgentId::new(0)), 4);
        let b = canonical_view_code(&inst, Node::Agent(AgentId::new(1)), 4);
        assert_eq!(a, b, "mirrored agents are isomorphic");
        assert!(!views_equal(
            &inst,
            Node::Agent(AgentId::new(0)),
            &inst,
            Node::Agent(AgentId::new(1)),
            4
        ));
    }

    #[test]
    fn canonical_codes_distinguish_coefficients_and_depth() {
        let a = cycle_special(6, 1.0);
        let b = cycle_special(6, 0.5);
        assert_ne!(
            canonical_view_code(&a, Node::Agent(AgentId::new(0)), 1),
            canonical_view_code(&b, Node::Agent(AgentId::new(0)), 1)
        );
        assert_ne!(
            canonical_view_code(&a, Node::Agent(AgentId::new(0)), 1),
            canonical_view_code(&a, Node::Agent(AgentId::new(0)), 2),
            "horizon markers differ by depth"
        );
    }

    #[test]
    fn canonical_codes_match_across_cycle_lengths() {
        let a = cycle_special(6, 1.0);
        let b = cycle_special(9, 1.0);
        assert_eq!(
            canonical_view_code(&a, Node::Agent(AgentId::new(0)), 5),
            canonical_view_code(&b, Node::Agent(AgentId::new(3)), 5)
        );
    }

    #[test]
    fn canonical_ids_identify_mirrored_views() {
        // Same property as the string codes, now as an id compare.
        let inst = cycle_special(6, 1.0);
        let mut arena = ViewArena::new();
        let mut it = ViewInterner::new(&inst);
        let a = it.intern_canonical(&mut arena, Node::Agent(AgentId::new(0)), 4);
        let b = it.intern_canonical(&mut arena, Node::Agent(AgentId::new(1)), 4);
        assert_eq!(a, b, "mirrored agents are isomorphic");
        // The port-exact ids still tell them apart.
        let ea = it.intern(&mut arena, Node::Agent(AgentId::new(0)), 4);
        let eb = it.intern(&mut arena, Node::Agent(AgentId::new(1)), 4);
        assert_ne!(ea, eb);
    }

    #[test]
    fn canonical_ids_distinguish_coefficients_and_depth() {
        let a = cycle_special(6, 1.0);
        let b = cycle_special(6, 0.5);
        let mut arena = ViewArena::new();
        let mut ia = ViewInterner::new(&a);
        let mut ib = ViewInterner::new(&b);
        let v = Node::Agent(AgentId::new(0));
        assert_ne!(
            ia.intern_canonical(&mut arena, v, 1),
            ib.intern_canonical(&mut arena, v, 1)
        );
        assert_ne!(
            ia.intern_canonical(&mut arena, v, 1),
            ia.intern_canonical(&mut arena, v, 2),
            "horizon markers differ by depth"
        );
    }

    #[test]
    fn canonical_ids_match_across_cycle_lengths() {
        let a = cycle_special(6, 1.0);
        let b = cycle_special(9, 1.0);
        let mut arena = ViewArena::new();
        assert_eq!(
            ViewInterner::new(&a).intern_canonical(&mut arena, Node::Agent(AgentId::new(0)), 5),
            ViewInterner::new(&b).intern_canonical(&mut arena, Node::Agent(AgentId::new(3)), 5),
        );
    }

    #[test]
    fn canonical_ids_refine_canonical_codes() {
        // Equal canonical ids imply equal canonical string codes (the
        // ids additionally keep port kinds at the view frontier, so the
        // implication is one-way in general).
        let insts = [cycle_special(6, 1.0), path_special(9, 1.0)];
        let mut arena = ViewArena::new();
        for depth in [0usize, 2, 4] {
            let mut seen: Vec<(ViewId, String)> = Vec::new();
            for inst in &insts {
                let mut it = ViewInterner::new(inst);
                for v in inst.agents() {
                    let id = it.intern_canonical(&mut arena, Node::Agent(v), depth);
                    let code = canonical_view_code(inst, Node::Agent(v), depth);
                    for (oid, ocode) in &seen {
                        if id == *oid {
                            assert_eq!(&code, ocode, "id-equal views must be code-equal");
                        }
                    }
                    seen.push((id, code));
                }
            }
        }
    }

    #[test]
    fn girth_helper_matches_commgraph() {
        let inst = cycle_special(5, 1.0);
        assert_eq!(girth(&inst), Some(20));
    }

    #[test]
    fn interned_views_match_gathered_trees() {
        // The direct (topology-walking) interner builds exactly the
        // views the message protocol gathers.
        let inst = cycle_special(4, 1.5);
        let net = Network::new(&inst);
        let (views, _) = mmlp_net::gather_views(&net, 5);
        let mut arena = ViewArena::new();
        let mut interner = ViewInterner::new(&inst);
        let g = CommGraph::new(&inst);
        for flat in 0..g.n_nodes() as u32 {
            let id = interner.intern(&mut arena, g.node(flat), 5);
            assert_eq!(arena.to_tree(id), views[flat as usize], "node {flat}");
        }
    }

    #[test]
    fn interner_re_interns_when_handed_a_fresh_arena() {
        // Cached ids index the arena they were interned into; a new
        // arena must be populated from scratch, not fed stale ids.
        let inst = cycle_special(4, 1.0);
        let mut interner = ViewInterner::new(&inst);
        let mut arena_a = ViewArena::new();
        let ia = interner.intern(&mut arena_a, Node::Agent(AgentId::new(0)), 3);
        let mut arena_b = ViewArena::new();
        let ib = interner.intern(&mut arena_b, Node::Agent(AgentId::new(0)), 3);
        assert!(!arena_b.is_empty(), "second arena must be populated");
        assert_eq!(arena_a.to_tree(ia), arena_b.to_tree(ib));
    }

    #[test]
    fn bulk_comparison_shares_one_arena() {
        // The T5 pattern: intern every agent of two instances once,
        // compare all pairs by id — no ball is ever walked twice.
        let a = cycle_special(6, 1.0);
        let b = path_special(9, 1.0);
        let mut arena = ViewArena::new();
        let mut ia = ViewInterner::new(&a);
        let mut ib = ViewInterner::new(&b);
        let depth = 4;
        let ids_a: Vec<_> = a
            .agents()
            .map(|v| ia.intern(&mut arena, Node::Agent(v), depth))
            .collect();
        let mut matched = 0;
        for w in b.agents() {
            let id = ib.intern(&mut arena, Node::Agent(w), depth);
            for (v, &va) in ids_a.iter().enumerate() {
                let eq_by_id = id == va;
                let eq_by_walk = views_equal(
                    &b,
                    Node::Agent(w),
                    &a,
                    Node::Agent(AgentId::new(v as u32)),
                    depth,
                );
                assert_eq!(eq_by_id, eq_by_walk, "pair ({w}, {v})");
                matched += usize::from(eq_by_id);
            }
        }
        assert!(matched > 0, "interior path agents must match cycle agents");
    }
}
