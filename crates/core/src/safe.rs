//! The *safe algorithm* — the best previously known local algorithm for
//! general max-min LPs (factor `ΔI`; Papadimitriou–Yannakakis STOC'93,
//! Floréen et al. IPDPS'08) — used as the baseline in every comparison
//! experiment.
//!
//! Each agent plays it safe: `x_v = min_{i∈Iv} 1 / (a_iv · |Vi|)`. Every
//! constraint then carries at most `Σ_{v∈Vi} 1/|Vi| = 1`, and since any
//! feasible `y` has `y_v ≤ min_i 1/a_iv ≤ ΔI · x_v`, the utility is
//! within factor `ΔI` of the optimum. One communication round suffices:
//! each constraint tells its agents its degree.

use mmlp_instance::{Instance, NodeKind, Solution};
use mmlp_net::{Network, NodeInfo, Protocol, RunResult};

/// The safe solution in closed form.
///
/// The per-agent minimum runs through [`mmlp_net::lanes::min_lanes`]
/// (split accumulators over strictly positive finite values — order-
/// independent at the bit level, so still bit-identical to
/// [`SafeProtocol`]'s scalar fold; asserted in
/// `distributed_matches_closed_form`).
pub fn safe_solution(inst: &Instance) -> Solution {
    let mut x = vec![0.0f64; inst.n_agents()];
    let mut recips = Vec::new();
    for v in inst.agents() {
        recips.clear();
        recips.extend(
            inst.agent_constraints(v)
                .iter()
                .map(|e| 1.0 / (e.coef * inst.constraint_row(e.cons).len() as f64)),
        );
        x[v.idx()] = mmlp_net::lanes::min_lanes(&recips);
        if x[v.idx()].is_infinite() {
            // Unconstrained agents (degenerate instances) contribute 0 in
            // the baseline rather than ∞.
            x[v.idx()] = 0.0;
        }
    }
    Solution::from_vec(x)
}

/// The a-priori guarantee of the safe algorithm.
pub fn safe_guarantee(delta_i: usize) -> f64 {
    delta_i as f64
}

/// The safe algorithm as a 1-round protocol (constraints announce their
/// degrees; agents take minima) — the distributed form used by the
/// round-count comparison experiment.
pub struct SafeProtocol;

/// Per-node state of [`SafeProtocol`]: agents end with `Some(x_v)`.
#[derive(Clone, Debug, Default)]
pub struct SafeState {
    /// The output, for agent nodes.
    pub x: Option<f64>,
}

impl Protocol for SafeProtocol {
    type State = SafeState;
    type Message = f64;

    fn rounds(&self) -> usize {
        1
    }

    fn init(&self, _node: &NodeInfo) -> SafeState {
        SafeState::default()
    }

    fn round(
        &self,
        _state: &mut SafeState,
        node: &NodeInfo,
        _round: usize,
        _inbox: &mut [Option<f64>],
        outbox: &mut [Option<f64>],
    ) {
        if node.kind == NodeKind::Constraint {
            let degree = node.degree() as f64;
            for slot in outbox.iter_mut() {
                *slot = Some(degree);
            }
        }
    }

    fn finish(&self, state: &mut SafeState, node: &NodeInfo, inbox: &mut [Option<f64>]) {
        if node.kind != NodeKind::Agent {
            return;
        }
        let mut x = f64::INFINITY;
        for (port, msg) in inbox.iter().enumerate() {
            if let Some(degree) = msg {
                let a = node.ports[port]
                    .coef
                    .expect("agents know their coefficients");
                x = x.min(1.0 / (a * degree));
            }
        }
        state.x = Some(if x.is_finite() { x } else { 0.0 });
    }
}

/// Runs [`SafeProtocol`] and extracts the solution.
pub fn safe_distributed(inst: &Instance) -> (Solution, mmlp_net::RunStats) {
    let net = Network::new(inst);
    let RunResult { states, stats } = mmlp_net::engine::run(&net, &SafeProtocol);
    let x: Vec<f64> = states[..inst.n_agents()]
        .iter()
        .map(|s| s.x.expect("agent produced output"))
        .collect();
    (Solution::from_vec(x), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::random::{random_general, RandomConfig};
    use mmlp_gen::special::cycle_special;
    use mmlp_instance::DegreeStats;

    #[test]
    fn safe_is_feasible_on_random_instances() {
        for seed in 0..10 {
            let inst = random_general(&RandomConfig::default(), seed);
            let x = safe_solution(&inst);
            assert!(x.is_feasible(&inst, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn safe_achieves_factor_delta_i() {
        for seed in 0..5 {
            let inst = random_general(
                &RandomConfig {
                    n_agents: 20,
                    n_constraints: 14,
                    n_objectives: 12,
                    ..RandomConfig::default()
                },
                seed,
            );
            let x = safe_solution(&inst);
            let opt = mmlp_lp::solve_maxmin(&inst).expect("bounded").omega;
            let delta_i = DegreeStats::of(&inst).delta_i as f64;
            assert!(
                x.utility(&inst) >= opt / delta_i - 1e-9,
                "seed {seed}: {} < {} / {delta_i}",
                x.utility(&inst),
                opt
            );
        }
    }

    #[test]
    fn safe_on_cycle_is_half() {
        let inst = cycle_special(6, 1.0);
        let x = safe_solution(&inst);
        // All constraints have degree 2 and unit coefficients: x = 1/2 —
        // on the cycle the safe algorithm happens to be optimal.
        for v in inst.agents() {
            assert_eq!(x.value(v), 0.5);
        }
    }

    #[test]
    fn distributed_matches_closed_form() {
        for seed in 0..5 {
            let inst = random_general(&RandomConfig::default(), seed);
            let reference = safe_solution(&inst);
            let (dist, stats) = safe_distributed(&inst);
            assert_eq!(stats.rounds, 1);
            for v in inst.agents() {
                assert_eq!(
                    dist.value(v).to_bits(),
                    reference.value(v).to_bits(),
                    "seed {seed} agent {v}"
                );
            }
        }
    }

    #[test]
    fn guarantee_value() {
        assert_eq!(safe_guarantee(3), 3.0);
    }
}
