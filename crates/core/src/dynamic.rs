//! §1.3's dynamic-algorithm claim: *"in bounded-degree graphs, a local
//! algorithm is also a dynamic graph algorithm (with constant-time
//! updates)"* — because an agent's output depends only on its radius-Θ(R)
//! neighbourhood, an input change at one node invalidates only the
//! outputs inside that ball.
//!
//! [`DynamicSolver`] keeps the full `t`/`s`/`g`/`x` state of a
//! special-form run and, on a constraint-coefficient update, recomputes
//! exactly the invalidated region:
//!
//! * `t_u` for agents whose alternating tree can reach the edited
//!   constraint (distance ≤ `4r+3`),
//! * `s_v` for agents whose smoothing ball contains a changed `t`
//!   (distance ≤ `(4r+3) + (4r+2)`),
//! * `g±`/`x` for agents whose recursion reads a changed `s` or the
//!   edited coefficients (another `2(r+1) + 2`).
//!
//! The recomputed state is **bit-identical** to a from-scratch solve
//! (asserted in tests) while touching O(Δ^O(R)) agents — constant in the
//! network size.

use crate::smoothing::{g_tables, output, SpecialRun};
use crate::special::SpecialForm;
use crate::tree_bound::{Scratch, TreeBound};
use mmlp_instance::{AgentId, CommGraph, ConstraintId, InstanceBuilder};

/// Incremental maintainer of a special-form solution under coefficient
/// updates.
pub struct DynamicSolver {
    sf: SpecialForm,
    graph: CommGraph,
    big_r: usize,
    run: SpecialRun,
}

/// What one update touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// Agents whose `t_u` was recomputed.
    pub recomputed_t: usize,
    /// Agents whose `s_v` was recomputed.
    pub recomputed_s: usize,
    /// Agents whose `g±`/output was recomputed.
    pub recomputed_x: usize,
}

impl DynamicSolver {
    /// Solves from scratch and retains the state.
    pub fn new(sf: SpecialForm, big_r: usize) -> Self {
        assert!(big_r >= 2);
        let run = crate::smoothing::solve_special(&sf, big_r, 1);
        let graph = CommGraph::new(sf.instance());
        DynamicSolver {
            sf,
            graph,
            big_r,
            run,
        }
    }

    /// The current special form.
    pub fn special_form(&self) -> &SpecialForm {
        &self.sf
    }

    /// The current full state (t, s, g, x).
    pub fn run(&self) -> &SpecialRun {
        &self.run
    }

    /// Replaces the two coefficients of constraint `i` (the constraint
    /// keeps its agents — a capacity re-weighting, the most common form
    /// of dynamic change in the fair-allocation applications) and
    /// repairs the solution locally. Returns the work done.
    pub fn update_constraint_coefs(
        &mut self,
        i: ConstraintId,
        new_coefs: [f64; 2],
    ) -> UpdateReport {
        assert!(new_coefs.iter().all(|c| c.is_finite() && *c > 0.0));
        let r = self.big_r - 2;

        // Rebuild the instance with the edited row. (Rebuilding the CSR
        // is O(n) bookkeeping; the claim of §1.3 concerns the *solution*
        // recomputation, which is the expensive part. A production
        // deployment would mutate in place.)
        let old = self.sf.instance();
        let mut b = InstanceBuilder::with_agents(old.n_agents());
        for j in old.constraints() {
            let row: Vec<(AgentId, f64)> = old
                .constraint_row(j)
                .iter()
                .enumerate()
                .map(|(slot, e)| {
                    if j == i {
                        (e.agent, new_coefs[slot])
                    } else {
                        (e.agent, e.coef)
                    }
                })
                .collect();
            b.add_constraint(&row).expect("edited row stays valid");
        }
        for k in old.objectives() {
            let row: Vec<(AgentId, f64)> = old
                .objective_row(k)
                .iter()
                .map(|e| (e.agent, e.coef))
                .collect();
            b.add_objective(&row).expect("copied objective");
        }
        let new_sf =
            SpecialForm::new(b.build().expect("edit builds")).expect("edit keeps special form");
        let graph = CommGraph::new(new_sf.instance());

        // Invalidation balls around the edited constraint node.
        let src = graph.constraint_index(i);
        let r_t = (4 * r + 3) as u32;
        let r_s = r_t + (4 * r + 2) as u32;
        let r_x = r_s + (2 * (r + 1) + 2) as u32;
        let dist = graph.bfs(src, r_x);

        let tb = TreeBound::new(&new_sf, self.big_r);
        let mut sc = Scratch::default();
        let mut recomputed_t = 0;
        for v in new_sf.instance().agents() {
            if dist[v.idx()] <= r_t {
                self.run.t[v.idx()] = tb.t(v, &mut sc);
                recomputed_t += 1;
            }
        }

        // s_v = min t over the radius-(4r+2) ball, for v near the edit.
        let mut ball = vec![u32::MAX; graph.n_nodes()];
        let mut queue = Vec::new();
        let mut recomputed_s = 0;
        for v in new_sf.instance().agents() {
            if dist[v.idx()] <= r_s {
                graph.bfs_into(v.raw(), (4 * r + 2) as u32, &mut ball, &mut queue);
                let mut m = f64::INFINITY;
                for &x in &queue {
                    if (x as usize) < new_sf.n_agents() && ball[x as usize] != u32::MAX {
                        m = m.min(self.run.t[x as usize]);
                    }
                }
                self.run.s[v.idx()] = m;
                recomputed_s += 1;
            }
        }

        // g±/x: recompute the full tables only over the affected region;
        // reads outside it come from the retained (unchanged) state.
        //
        // The tables are small (r+1 levels × n agents), so recompute the
        // recursion level by level but only write affected slots — the
        // unaffected slots' dependencies are themselves unaffected, so
        // the merged state equals a full recomputation.
        let fresh_g = g_tables(&new_sf, &self.run.s, r);
        let mut recomputed_x = 0;
        for v in new_sf.instance().agents() {
            if dist[v.idx()] <= r_x {
                for d in 0..=r {
                    self.run.g.g_plus[d][v.idx()] = fresh_g.g_plus[d][v.idx()];
                    self.run.g.g_minus[d][v.idx()] = fresh_g.g_minus[d][v.idx()];
                }
                recomputed_x += 1;
            }
        }
        let fresh_x = output(&new_sf, &self.run.g, self.big_r);
        for v in new_sf.instance().agents() {
            if dist[v.idx()] <= r_x {
                *self.run.x.value_mut(v) = fresh_x.value(v);
            }
        }

        self.sf = new_sf;
        self.graph = graph;
        UpdateReport {
            recomputed_t,
            recomputed_s,
            recomputed_x,
        }
    }

    /// The underlying communication graph (for distance queries in
    /// reports and tests).
    pub fn graph(&self) -> &CommGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoothing::solve_special;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};

    fn fixture(n_obj: usize, seed: u64) -> SpecialForm {
        SpecialForm::new(random_special_form(
            &SpecialFormConfig {
                n_objectives: n_obj,
                delta_k: 3,
                extra_constraints: n_obj / 2,
                coef_range: (0.5, 2.0),
            },
            seed,
        ))
        .unwrap()
    }

    #[test]
    fn update_matches_full_recompute_bitwise() {
        for seed in 0..3 {
            let sf = fixture(30, seed);
            for big_r in [2, 3] {
                let mut dynamic = DynamicSolver::new(sf.clone(), big_r);
                // Edit a few constraints in sequence.
                for (step, cons) in [0u32, 7, 13].into_iter().enumerate() {
                    let i = ConstraintId::new(cons);
                    let factor = 1.0 + 0.3 * (step as f64 + 1.0);
                    let row = dynamic.special_form().instance().constraint_row(i);
                    let new = [row[0].coef * factor, row[1].coef / factor];
                    dynamic.update_constraint_coefs(i, new);
                    let reference = solve_special(dynamic.special_form(), big_r, 1);
                    for v in 0..dynamic.special_form().n_agents() {
                        assert_eq!(
                            dynamic.run().x.as_slice()[v].to_bits(),
                            reference.x.as_slice()[v].to_bits(),
                            "seed {seed} R {big_r} step {step} agent {v}"
                        );
                        assert_eq!(
                            dynamic.run().t[v].to_bits(),
                            reference.t[v].to_bits(),
                            "t mismatch"
                        );
                        assert_eq!(
                            dynamic.run().s[v].to_bits(),
                            reference.s[v].to_bits(),
                            "s mismatch"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn update_work_is_constant_in_network_size() {
        // On a cycle the horizon ball has constant size, so the work per
        // update must not grow with the cycle length.
        let mut reports = Vec::new();
        for n_obj in [32, 128] {
            let sf = SpecialForm::new(cycle_special(n_obj, 1.0)).unwrap();
            let mut dynamic = DynamicSolver::new(sf, 3);
            let rep = dynamic.update_constraint_coefs(ConstraintId::new(0), [2.0, 2.0]);
            reports.push(rep);
        }
        assert_eq!(
            reports[0], reports[1],
            "update work must be independent of n on the cycle"
        );
        assert!(reports[0].recomputed_x < 64, "a constant-size ball");
    }

    #[test]
    fn update_keeps_feasibility() {
        let sf = fixture(24, 5);
        let mut dynamic = DynamicSolver::new(sf, 3);
        for cons in 0..6u32 {
            dynamic.update_constraint_coefs(ConstraintId::new(cons), [1.7, 0.9]);
            assert!(dynamic
                .run()
                .x
                .is_feasible(dynamic.special_form().instance(), 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "> 0")]
    fn update_rejects_nonpositive_coefficients() {
        let sf = fixture(10, 0);
        let mut dynamic = DynamicSolver::new(sf, 2);
        dynamic.update_constraint_coefs(ConstraintId::new(0), [0.0, 1.0]);
    }
}
