//! §1.3's dynamic-algorithm claim: *"in bounded-degree graphs, a local
//! algorithm is also a dynamic graph algorithm (with constant-time
//! updates)"* — because an agent's output depends only on its radius-Θ(R)
//! neighbourhood, an input change at one node invalidates only the
//! outputs inside that ball.
//!
//! [`DynamicSolver`] keeps the full `t`/`s`/`g`/`x` state of a
//! special-form run and, on a constraint-coefficient edit, recomputes
//! exactly the invalidated region:
//!
//! | state | dirty radius around the edited constraint | why |
//! |-------|-------------------------------------------|-----|
//! | `t_u` | `4r+3` | `t_u` reads the depth-`4r+2` view of `u` |
//! | `s_v` | `(4r+3) + (4r+2)` | `s_v` mins `t` over a `4r+2` ball |
//! | `g±`, `x_v` | `+ 2(r+1) + 2` more | the depth-`r` recursion reads `s` two hops per level |
//!
//! Everything is repaired **in place** — the instance CSR, the
//! special-form partner tables, the interner's network and the solution
//! state all mutate without O(n) rebuilds — so one update costs
//! O(Δ^O(R)), *constant in the network size*, which is what the
//! `delta_solve` bench gates on.
//!
//! The recomputed state is **bit-identical** to a from-scratch solve
//! (asserted across the generator catalogue and thread counts in tests).
//!
//! Views of dirty agents are re-interned into a persistent hash-consed
//! [`ViewArena`]: subtrees untouched by the edit re-intern to their
//! existing ids (no allocation), the generation-stamped
//! [`FlatScratch`] memo extends in O(new ids), and [`UpdateReport`]
//! carries the arena-reuse counters so callers can observe the §1.3
//! locality claim directly.
//!
//! Structural edits (edge/agent/row changes, from
//! [`mmlp_instance::delta`]) are handled by [`DynamicSolver::apply_delta`]
//! with a from-scratch re-solve — the paper's dynamic model covers
//! coefficient changes; structure changes re-validate the special form
//! and rebuild, still reusing the arena.

use crate::distributed::{t_from_arena, FlatScratch};
use crate::smoothing::{solve_special, SpecialRun};
use crate::special::{SpecialForm, SpecialFormError};
use crate::unfold::ViewInterner;
use mmlp_instance::delta::{Delta, DeltaError, Edit, RowKind};
use mmlp_instance::{instance_hash, AgentId, CommGraph, ConstraintId, Node};
use mmlp_net::{ViewArena, ViewId};

/// Incremental maintainer of a special-form solution under edits.
pub struct DynamicSolver {
    sf: SpecialForm,
    graph: CommGraph,
    big_r: usize,
    threads: usize,
    run: SpecialRun,
    /// Persistent hash-consed store of every view interned so far, across
    /// all revisions — unchanged subtrees re-intern to existing ids.
    arena: ViewArena,
    /// Ball-local view builder bound to the *current* revision's network.
    interner: ViewInterner,
    /// Persistent flat evaluator tables; extended (not rebuilt) as the
    /// arena grows.
    scratch: FlatScratch,
    /// Current interned root view per agent.
    roots: Vec<ViewId>,
    /// BFS buffers (dirty-ball marking / smoothing balls), reused across
    /// updates so an update allocates nothing O(n).
    dist: Vec<u32>,
    dist_queue: Vec<u32>,
    ball: Vec<u32>,
    ball_queue: Vec<u32>,
}

/// What one update touched — the observable form of the §1.3 claim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Agents whose `t_u` was recomputed.
    pub recomputed_t: usize,
    /// Agents whose `s_v` was recomputed.
    pub recomputed_s: usize,
    /// Agents whose `g±`/output was recomputed.
    pub recomputed_x: usize,
    /// Interned nodes in the persistent arena before the update.
    pub arena_before: usize,
    /// Interned nodes the update added — the subtrees actually changed
    /// by the edit; everything else hash-consed to existing ids.
    pub arena_added: usize,
    /// Re-interned dirty roots that resolved to their previous id (the
    /// agent's whole view was outside the edit's reach).
    pub roots_reused: usize,
}

/// Why a delta could not be applied to a [`DynamicSolver`].
#[derive(Clone, Debug, PartialEq)]
pub enum DynamicError {
    /// The delta itself was invalid (wrong base, unknown target, bad
    /// coefficient, …).
    Delta(DeltaError),
    /// The edited instance left the special form, so the incremental
    /// solver cannot represent it. Callers fall back to the general
    /// pipeline (`LocalSolver`).
    NotSpecialForm(SpecialFormError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::Delta(e) => write!(f, "invalid delta: {e}"),
            DynamicError::NotSpecialForm(e) => {
                write!(f, "edited instance leaves the special form: {e}")
            }
        }
    }
}

impl std::error::Error for DynamicError {}

impl From<DeltaError> for DynamicError {
    fn from(e: DeltaError) -> Self {
        DynamicError::Delta(e)
    }
}

impl DynamicSolver {
    /// Solves from scratch with `threads` workers on the flat path and
    /// retains the state (plus the interned views of every agent, so the
    /// first update already reuses the arena).
    pub fn new(sf: SpecialForm, big_r: usize, threads: usize) -> Self {
        assert!(big_r >= 2);
        let threads = threads.max(1);
        let run = solve_special(&sf, big_r, threads);
        let graph = CommGraph::new(sf.instance());
        let mut arena = ViewArena::new();
        let mut interner = ViewInterner::new(sf.instance());
        let depth = 4 * (big_r - 2) + 2;
        let roots: Vec<ViewId> = sf
            .instance()
            .agents()
            .map(|v| interner.intern(&mut arena, Node::Agent(v), depth))
            .collect();
        let n_nodes = graph.n_nodes();
        DynamicSolver {
            sf,
            graph,
            big_r,
            threads,
            run,
            arena,
            interner,
            scratch: FlatScratch::default(),
            roots,
            dist: vec![u32::MAX; n_nodes],
            dist_queue: Vec::new(),
            ball: vec![u32::MAX; n_nodes],
            ball_queue: Vec::new(),
        }
    }

    /// The current special form.
    pub fn special_form(&self) -> &SpecialForm {
        &self.sf
    }

    /// The current full state (t, s, g, x).
    pub fn run(&self) -> &SpecialRun {
        &self.run
    }

    /// The locality parameter `R`.
    pub fn big_r(&self) -> usize {
        self.big_r
    }

    /// Worker threads used by from-scratch (re)solves.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Interned nodes currently held by the persistent arena.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Flat-evaluator memo counters `(hits, misses, skips)` accumulated
    /// by incremental `t` repairs since construction.
    pub fn memo_stats(&self) -> (u64, u64, u64) {
        (
            self.scratch.memo_hits(),
            self.scratch.memo_misses(),
            self.scratch.memo_skips(),
        )
    }

    /// Applies a content-addressed [`Delta`] to the maintained instance.
    ///
    /// Constraint-coefficient edits (`set c …`) repair the solution
    /// ball-locally; any structural edit falls back to a from-scratch
    /// re-solve of the edited instance (which must still be special
    /// form). Either way the maintained state is bit-identical to a
    /// from-scratch solve of the new revision, and the delta is
    /// all-or-nothing: on `Err` the solver state is unchanged.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<UpdateReport, DynamicError> {
        let actual = instance_hash(self.sf.instance());
        if delta.base != actual {
            return Err(DeltaError::BaseMismatch {
                expected: delta.base,
                actual,
            }
            .into());
        }
        let coef_only = delta.edits.iter().all(|e| {
            matches!(
                e,
                Edit::SetCoef {
                    row: RowKind::Constraint,
                    ..
                }
            )
        });
        if !coef_only {
            // Structural (or objective-side) edits: apply on a copy —
            // all-or-nothing by construction — and re-solve.
            let new_inst = delta
                .apply(self.sf.instance())
                .map_err(DynamicError::Delta)?;
            let sf = SpecialForm::new(new_inst).map_err(DynamicError::NotSpecialForm)?;
            return Ok(self.rebuild(sf));
        }
        // Coefficient edits leave the structure alone, so validating the
        // whole batch against the current rows up front is exact — the
        // repairs below then cannot fail half-way.
        for e in &delta.edits {
            let Edit::SetCoef {
                row_id,
                agent,
                coef,
                ..
            } = e
            else {
                unreachable!("checked coef_only");
            };
            if *row_id as usize >= self.sf.instance().n_constraints() {
                return Err(DeltaError::UnknownRow {
                    row: RowKind::Constraint,
                    row_id: *row_id,
                }
                .into());
            }
            let row = self
                .sf
                .instance()
                .constraint_row(ConstraintId::new(*row_id));
            if !row.iter().any(|en| en.agent == *agent) {
                return Err(DeltaError::NoSuchEdge {
                    row: RowKind::Constraint,
                    row_id: *row_id,
                    agent: agent.raw(),
                }
                .into());
            }
            if !(coef.is_finite() && *coef > 0.0) {
                return Err(DeltaError::BadCoefficient { value: *coef }.into());
            }
        }
        let mut total: Option<UpdateReport> = None;
        for e in &delta.edits {
            let Edit::SetCoef {
                row_id,
                agent,
                coef,
                ..
            } = e
            else {
                unreachable!("checked coef_only");
            };
            let i = ConstraintId::new(*row_id);
            let row = self.sf.instance().constraint_row(i);
            let mut new_coefs = [row[0].coef, row[1].coef];
            let slot = row
                .iter()
                .position(|en| en.agent == *agent)
                .expect("validated above");
            new_coefs[slot] = *coef;
            let rep = self.repair_coef_edit(i, new_coefs);
            total = Some(match total {
                None => rep,
                Some(t) => UpdateReport {
                    recomputed_t: t.recomputed_t + rep.recomputed_t,
                    recomputed_s: t.recomputed_s + rep.recomputed_s,
                    recomputed_x: t.recomputed_x + rep.recomputed_x,
                    arena_before: t.arena_before,
                    arena_added: t.arena_added + rep.arena_added,
                    roots_reused: t.roots_reused + rep.roots_reused,
                },
            });
        }
        Ok(total.unwrap_or(UpdateReport {
            arena_before: self.arena.len(),
            ..UpdateReport::default()
        }))
    }

    /// Replaces the two coefficients of constraint `i` (the constraint
    /// keeps its agents — a capacity re-weighting, the most common form
    /// of dynamic change in the fair-allocation applications) and
    /// repairs the solution locally. Returns the work done.
    pub fn update_constraint_coefs(
        &mut self,
        i: ConstraintId,
        new_coefs: [f64; 2],
    ) -> UpdateReport {
        assert!(new_coefs.iter().all(|c| c.is_finite() && *c > 0.0));
        self.repair_coef_edit(i, new_coefs)
    }

    /// The ball-local repair for one constraint-coefficient edit. Inputs
    /// are pre-validated: `i` exists and the coefficients are positive
    /// and finite.
    fn repair_coef_edit(&mut self, i: ConstraintId, new_coefs: [f64; 2]) -> UpdateReport {
        let r = self.big_r - 2;
        let depth = 4 * r + 2;
        // Invalidation radii around the edited constraint node (see the
        // module table).
        let r_t = (4 * r + 3) as u32;
        let r_s = r_t + (4 * r + 2) as u32;
        let r_x = r_s + (2 * (r + 1) + 2) as u32;
        let n_agents = self.sf.n_agents();

        // Mark the dirty ball (the topology is untouched by a
        // coefficient edit, so the retained graph and BFS buffers apply).
        let src = self.graph.constraint_index(i);
        self.graph
            .bfs_into(src, r_x, &mut self.dist, &mut self.dist_queue);

        // Mutate the maintained inputs in place: instance CSR + partner
        // tables (special form) and the interner's agent-known ports.
        let edited = {
            let row = self.sf.instance().constraint_row(i);
            [row[0].agent, row[1].agent]
        };
        self.sf.set_constraint_coefs(i, new_coefs);
        self.interner
            .set_constraint_coef(i, edited[0], new_coefs[0]);
        self.interner
            .set_constraint_coef(i, edited[1], new_coefs[1]);

        // t: re-intern each dirty agent's view — subtrees the edit cannot
        // reach hash-cons straight back to their existing ids — and
        // re-evaluate from the arena with the persistent memo tables.
        let arena_before = self.arena.len();
        let mut recomputed_t = 0;
        let mut roots_reused = 0;
        for v in self.sf.instance().agents() {
            if self.dist[v.idx()] <= r_t {
                let root = self.interner.intern(&mut self.arena, Node::Agent(v), depth);
                if root == self.roots[v.idx()] {
                    roots_reused += 1;
                } else {
                    self.roots[v.idx()] = root;
                }
                self.run.t[v.idx()] =
                    t_from_arena(&self.arena, root, self.big_r, &mut self.scratch);
                recomputed_t += 1;
            }
        }
        let arena_added = self.arena.len() - arena_before;

        // s_v = min t over the radius-(4r+2) ball, for v near the edit.
        let mut recomputed_s = 0;
        for v in self.sf.instance().agents() {
            if self.dist[v.idx()] <= r_s {
                self.graph.bfs_into(
                    v.raw(),
                    (4 * r + 2) as u32,
                    &mut self.ball,
                    &mut self.ball_queue,
                );
                let mut m = f64::INFINITY;
                for &x in &self.ball_queue {
                    if (x as usize) < n_agents && self.ball[x as usize] != u32::MAX {
                        m = m.min(self.run.t[x as usize]);
                    }
                }
                self.run.s[v.idx()] = m;
                recomputed_s += 1;
            }
        }

        // g±/x: run the (12)–(14) recursion level by level **in place**
        // over the affected agents only. Reads that land outside the
        // write-set return retained values, which equal what a full
        // recomputation would produce there — any slot the edit can
        // influence at level d is within r_s + 2d < r_x — so the merged
        // tables equal a from-scratch `g_tables` bit for bit.
        let dirty: Vec<AgentId> = self
            .sf
            .instance()
            .agents()
            .filter(|v| self.dist[v.idx()] <= r_x)
            .collect();
        for d in 0..=r {
            if d == 0 {
                for &v in &dirty {
                    self.run.g.g_plus[0][v.idx()] = self.sf.cap(v);
                }
            } else {
                for &v in &dirty {
                    let val = self
                        .sf
                        .cons(v)
                        .iter()
                        .map(|cv| {
                            (1.0 - cv.a_partner * self.run.g.g_minus[d - 1][cv.partner.idx()])
                                / cv.a_own
                        })
                        .fold(f64::INFINITY, f64::min);
                    self.run.g.g_plus[d][v.idx()] = val;
                }
            }
            // (13) at level d reads g⁺ at the same level, so it runs
            // after every dirty g⁺ slot of this level is written.
            for &v in &dirty {
                let sum: f64 = self
                    .sf
                    .others(v)
                    .map(|w| self.run.g.g_plus[d][w.idx()])
                    .sum();
                self.run.g.g_minus[d][v.idx()] = (self.run.s[v.idx()] - sum).max(0.0);
            }
        }
        let scale = 1.0 / (2.0 * self.big_r as f64);
        for &v in &dirty {
            let mut acc = 0.0;
            for d in 0..=r {
                acc += self.run.g.g_plus[d][v.idx()] + self.run.g.g_minus[d][v.idx()];
            }
            *self.run.x.value_mut(v) = acc * scale;
        }

        UpdateReport {
            recomputed_t,
            recomputed_s,
            recomputed_x: dirty.len(),
            arena_before,
            arena_added,
            roots_reused,
        }
    }

    /// Structural fallback: adopt `sf` as the new revision, re-solve from
    /// scratch, and re-intern every agent view into the persistent arena
    /// (unchanged regions still hash-cons to their old ids).
    fn rebuild(&mut self, sf: SpecialForm) -> UpdateReport {
        let run = solve_special(&sf, self.big_r, self.threads);
        let graph = CommGraph::new(sf.instance());
        let mut interner = ViewInterner::new(sf.instance());
        let depth = 4 * (self.big_r - 2) + 2;
        let arena_before = self.arena.len();
        let n = sf.n_agents();
        let mut roots = Vec::with_capacity(n);
        let mut roots_reused = 0;
        for v in sf.instance().agents() {
            let root = interner.intern(&mut self.arena, Node::Agent(v), depth);
            if self.roots.get(v.idx()) == Some(&root) {
                roots_reused += 1;
            }
            roots.push(root);
        }
        let n_nodes = graph.n_nodes();
        self.sf = sf;
        self.graph = graph;
        self.run = run;
        self.interner = interner;
        self.roots = roots;
        self.dist = vec![u32::MAX; n_nodes];
        self.dist_queue = Vec::new();
        self.ball = vec![u32::MAX; n_nodes];
        self.ball_queue = Vec::new();
        UpdateReport {
            recomputed_t: n,
            recomputed_s: n,
            recomputed_x: n,
            arena_before,
            arena_added: self.arena.len() - arena_before,
            roots_reused,
        }
    }

    /// The underlying communication graph (for distance queries in
    /// reports and tests).
    pub fn graph(&self) -> &CommGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoothing::solve_special;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};
    use mmlp_instance::InstanceBuilder;

    fn fixture(n_obj: usize, seed: u64) -> SpecialForm {
        SpecialForm::new(random_special_form(
            &SpecialFormConfig {
                n_objectives: n_obj,
                delta_k: 3,
                extra_constraints: n_obj / 2,
                coef_range: (0.5, 2.0),
            },
            seed,
        ))
        .unwrap()
    }

    fn assert_bitwise_eq(dynamic: &DynamicSolver, reference: &SpecialRun, label: &str) {
        for v in 0..dynamic.special_form().n_agents() {
            assert_eq!(
                dynamic.run().x.as_slice()[v].to_bits(),
                reference.x.as_slice()[v].to_bits(),
                "{label}: x mismatch at agent {v}"
            );
            assert_eq!(
                dynamic.run().t[v].to_bits(),
                reference.t[v].to_bits(),
                "{label}: t mismatch at agent {v}"
            );
            assert_eq!(
                dynamic.run().s[v].to_bits(),
                reference.s[v].to_bits(),
                "{label}: s mismatch at agent {v}"
            );
        }
    }

    #[test]
    fn update_matches_full_recompute_bitwise() {
        for seed in 0..3 {
            let sf = fixture(30, seed);
            for big_r in [2, 3] {
                let mut dynamic = DynamicSolver::new(sf.clone(), big_r, 1);
                // Edit a few constraints in sequence.
                for (step, cons) in [0u32, 7, 13].into_iter().enumerate() {
                    let i = ConstraintId::new(cons);
                    let factor = 1.0 + 0.3 * (step as f64 + 1.0);
                    let row = dynamic.special_form().instance().constraint_row(i);
                    let new = [row[0].coef * factor, row[1].coef / factor];
                    dynamic.update_constraint_coefs(i, new);
                    let reference = solve_special(dynamic.special_form(), big_r, 1);
                    assert_bitwise_eq(
                        &dynamic,
                        &reference,
                        &format!("seed {seed} R {big_r} step {step}"),
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_scratch_solve_is_bit_identical() {
        // Satellite: `new` accepts a thread count, and the threaded flat
        // path must agree with the scalar one bit for bit — both at
        // construction and after an update.
        let sf = fixture(40, 11);
        let scalar = DynamicSolver::new(sf.clone(), 3, 1);
        let mut threaded = DynamicSolver::new(sf, 3, 4);
        assert_eq!(threaded.threads(), 4);
        assert_bitwise_eq(&threaded, scalar.run(), "construction");
        let i = ConstraintId::new(3);
        let row = threaded.special_form().instance().constraint_row(i);
        let new = [row[0].coef * 1.5, row[1].coef * 0.5];
        threaded.update_constraint_coefs(i, new);
        let reference = solve_special(threaded.special_form(), 3, 4);
        assert_bitwise_eq(&threaded, &reference, "after update");
    }

    #[test]
    fn update_work_is_constant_in_network_size() {
        // On a cycle the horizon ball has constant size, so the work per
        // update — including what the arena had to grow by — must not
        // grow with the cycle length.
        let mut reports = Vec::new();
        for n_obj in [32, 128] {
            let sf = SpecialForm::new(cycle_special(n_obj, 1.0)).unwrap();
            let mut dynamic = DynamicSolver::new(sf, 3, 1);
            let rep = dynamic.update_constraint_coefs(ConstraintId::new(0), [2.0, 2.0]);
            reports.push(rep);
        }
        assert_eq!(
            reports[0], reports[1],
            "update work must be independent of n on the cycle"
        );
        assert!(reports[0].recomputed_x < 64, "a constant-size ball");
        assert!(
            reports[0].arena_added > 0,
            "an edit must intern some changed subtree"
        );
    }

    #[test]
    fn arena_reuse_shows_up_in_reports() {
        let sf = fixture(40, 2);
        let mut dynamic = DynamicSolver::new(sf, 3, 1);
        let first = dynamic.update_constraint_coefs(ConstraintId::new(5), [1.5, 1.5]);
        assert!(first.arena_before > 0, "construction interned all views");
        // Re-apply the identical coefficients: every dirty subtree was
        // already interned by the previous update, so the arena must not
        // grow at all.
        let again = dynamic.update_constraint_coefs(ConstraintId::new(5), [1.5, 1.5]);
        assert_eq!(again.arena_added, 0, "identical revision re-interns fully");
        assert_eq!(again.arena_before, first.arena_before + first.arena_added);
        let (hits, misses, _) = dynamic.memo_stats();
        assert!(hits + misses > 0, "t repairs went through the flat memo");
    }

    #[test]
    fn update_keeps_feasibility() {
        let sf = fixture(24, 5);
        let mut dynamic = DynamicSolver::new(sf, 3, 1);
        for cons in 0..6u32 {
            dynamic.update_constraint_coefs(ConstraintId::new(cons), [1.7, 0.9]);
            assert!(dynamic
                .run()
                .x
                .is_feasible(dynamic.special_form().instance(), 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "> 0")]
    fn update_rejects_nonpositive_coefficients() {
        let sf = fixture(10, 0);
        let mut dynamic = DynamicSolver::new(sf, 2, 1);
        dynamic.update_constraint_coefs(ConstraintId::new(0), [0.0, 1.0]);
    }

    #[test]
    fn zeroing_edit_is_rejected_and_state_survives() {
        // "Zero this coefficient" is not a coefficient set — the edit
        // model spells it `rmedge` (which leaves the special form, since
        // |Vi| would drop to 1). Both spellings must fail cleanly and
        // leave the solver exactly where it was.
        let sf = fixture(20, 7);
        let mut dynamic = DynamicSolver::new(sf, 3, 1);
        let before: Vec<u64> = dynamic
            .run()
            .x
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let base = instance_hash(dynamic.special_form().instance());
        let i = ConstraintId::new(1);
        let agent = dynamic.special_form().instance().constraint_row(i)[0].agent;

        let zero_set = Delta::single(
            base,
            Edit::SetCoef {
                row: RowKind::Constraint,
                row_id: 1,
                agent,
                coef: 0.0,
            },
        );
        assert!(matches!(
            dynamic.apply_delta(&zero_set),
            Err(DynamicError::Delta(DeltaError::BadCoefficient { .. }))
        ));

        let remove = Delta::single(
            base,
            Edit::RemoveEdge {
                row: RowKind::Constraint,
                row_id: 1,
                agent,
            },
        );
        assert!(matches!(
            dynamic.apply_delta(&remove),
            Err(DynamicError::NotSpecialForm(
                SpecialFormError::ConstraintDegree { .. }
            ))
        ));

        let after: Vec<u64> = dynamic
            .run()
            .x
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(before, after, "failed deltas must not disturb the state");
        assert_eq!(base, instance_hash(dynamic.special_form().instance()));
    }

    #[test]
    fn structural_delta_rebuilds_bit_identically() {
        // Adding a fresh constraint between two existing agents keeps
        // the special form; apply_delta must take the rebuild path and
        // land exactly on the from-scratch solve of the new revision.
        let sf = fixture(16, 3);
        let mut dynamic = DynamicSolver::new(sf, 3, 1);
        let inst = dynamic.special_form().instance();
        let (va, vb) = (AgentId::new(0), AgentId::new(1));
        let d = Delta::single(
            instance_hash(inst),
            Edit::AddRow {
                row: RowKind::Constraint,
                entries: vec![(va, 0.8), (vb, 1.2)],
            },
        );
        let rep = dynamic.apply_delta(&d).expect("structurally valid");
        assert_eq!(rep.recomputed_x, dynamic.special_form().n_agents());
        let reference = solve_special(dynamic.special_form(), 3, 1);
        assert_bitwise_eq(&dynamic, &reference, "structural rebuild");
        assert!(dynamic.special_form().instance().n_constraints() > 0);
    }

    #[test]
    fn degree_one_frontier_agents_update_bitwise() {
        // A chain whose endpoint agents sit in exactly one constraint:
        //   objectives pair (v0,v1) (v2,v3) (v4,v5);
        //   constraints chain (v0,v1) (v1,v2) (v2,v3) (v3,v4) (v4,v5).
        // v0 and v5 have constraint-degree 1 and sit at the dirty-ball
        // frontier for edits near the middle.
        let mut b = InstanceBuilder::new();
        let v: Vec<AgentId> = (0..6).map(|_| b.add_agent()).collect();
        for pair in v.chunks(2) {
            b.add_objective(&[(pair[0], 1.0), (pair[1], 1.0)]).unwrap();
        }
        for w in v.windows(2) {
            b.add_constraint(&[(w[0], 1.0), (w[1], 1.3)]).unwrap();
        }
        let sf = SpecialForm::new(b.build().unwrap()).unwrap();
        for big_r in [2, 3] {
            let mut dynamic = DynamicSolver::new(sf.clone(), big_r, 1);
            // Edit the middle constraint (v2,v3), then the endpoint ones.
            for cons in [2u32, 0, 4] {
                let i = ConstraintId::new(cons);
                let row = dynamic.special_form().instance().constraint_row(i);
                let new = [row[0].coef * 0.7, row[1].coef * 1.9];
                dynamic.update_constraint_coefs(i, new);
                let reference = solve_special(dynamic.special_form(), big_r, 1);
                assert_bitwise_eq(&dynamic, &reference, &format!("R {big_r} cons {cons}"));
            }
        }
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let sf = fixture(12, 1);
        let mut dynamic = DynamicSolver::new(sf, 3, 1);
        let base = instance_hash(dynamic.special_form().instance());
        let rep = dynamic
            .apply_delta(&Delta {
                base,
                edits: vec![],
            })
            .unwrap();
        assert_eq!(rep.recomputed_x, 0);
        assert_eq!(base, instance_hash(dynamic.special_form().instance()));
    }

    #[test]
    fn wrong_base_hash_is_rejected() {
        let sf = fixture(12, 1);
        let mut dynamic = DynamicSolver::new(sf, 3, 1);
        let d = Delta {
            base: 0xbad,
            edits: vec![],
        };
        assert!(matches!(
            dynamic.apply_delta(&d),
            Err(DynamicError::Delta(DeltaError::BaseMismatch { .. }))
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::smoothing::solve_special;
    use mmlp_gen::catalog::catalog;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Catalogue-wide §1.3 soundness: for every family that yields a
        /// special-form instance, a random sequence of k coefficient
        /// edits applied incrementally is bit-identical to a
        /// from-scratch solve of the final revision — across thread
        /// counts.
        #[test]
        fn k_incremental_edits_match_scratch_solve(
            size in 16usize..40,
            seed in 0u64..500,
            k in 1usize..6,
            threads in 1usize..4,
        ) {
            for fam in catalog() {
                let inst = fam.instance(size, seed);
                let Ok(sf) = SpecialForm::new(inst) else {
                    continue; // general families go through the §4 transform instead
                };
                if sf.instance().n_constraints() == 0 {
                    continue;
                }
                let mut dynamic = DynamicSolver::new(sf, 3, threads);
                let mut mix = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ size as u64;
                for step in 0..k {
                    mix = mix
                        .wrapping_add(0x2545_f491_4f6c_dd1d)
                        .wrapping_mul(0x5851_f42d_4c95_7f2d);
                    let n_cons = dynamic.special_form().instance().n_constraints() as u64;
                    let i = ConstraintId::new((mix % n_cons) as u32);
                    let factor = 0.5 + (mix >> 32) as f64 / u32::MAX as f64; // [0.5, 1.5)
                    let row = dynamic.special_form().instance().constraint_row(i);
                    let agent = row[(mix >> 16) as usize % 2].agent;
                    let coef = row[(mix >> 16) as usize % 2].coef * factor;
                    let base = instance_hash(dynamic.special_form().instance());
                    let d = Delta::single(base, Edit::SetCoef {
                        row: RowKind::Constraint,
                        row_id: i.raw(),
                        agent,
                        coef,
                    });
                    dynamic.apply_delta(&d).expect("validated edit");
                    prop_assert_ne!(
                        base,
                        instance_hash(dynamic.special_form().instance()),
                        "family {} step {}: the edit must change the revision",
                        fam.name, step
                    );
                }
                let reference = solve_special(dynamic.special_form(), 3, 1);
                for v in 0..dynamic.special_form().n_agents() {
                    prop_assert_eq!(
                        dynamic.run().x.as_slice()[v].to_bits(),
                        reference.x.as_slice()[v].to_bits(),
                        "family {} agent {}: x diverged from scratch solve",
                        fam.name, v
                    );
                }
            }
        }
    }
}
