//! §4: the five local transformations to *special form*, with composable
//! back-maps and ratio accounting.
//!
//! Applied in the paper's order:
//!
//! | step | § | establishes | optimum | back-map |
//! |------|---|------------|---------|----------|
//! | [`augment_singleton_constraints`] | 4.2 | `|Vi| ≥ 2` | preserved | restrict to original agents |
//! | [`reduce_constraint_degree`] | 4.3 | `|Vi| = 2` | `ω(x) ≥ 2 ω'(x')/ΔI` | `x_v = 2 x'_v / max_{i∈Iv} |Vi|` |
//! | [`split_multi_objective_agents`] | 4.4 | `|Kv| = 1` | preserved | max over copies |
//! | [`augment_singleton_objectives`] | 4.5 | `|Vk| ≥ 2` | preserved | max over copies |
//! | [`normalize_objective_coefficients`] | 4.6 | `c_kv = 1` | preserved | `x_v = x'_v / c_{k(v)v}` |
//!
//! Only §4.3 costs approximation quality — the factor `ΔI/2` that turns
//! the special-form guarantee `2(1−1/ΔK)(1+1/(R−1))` into Theorem 1's
//! `ΔI(1−1/ΔK)(1+1/(R−1))`.
//!
//! Each transformation is *locally computable*: it only inspects a
//! constant-radius neighbourhood of each node (§4.1 sketches the
//! deterministic port-numbering details). This crate applies them as
//! whole-instance rewrites — the per-node determinism makes the global
//! rewrite and the local one coincide; the locality is asserted by a
//! perturbation test in the integration suite.

use mmlp_instance::{AgentId, Instance, InstanceBuilder, Solution};

/// One back-mapping step (solution of the transformed instance →
/// solution of the input instance of that step).
#[derive(Clone, Debug)]
pub enum BackStep {
    /// Keep the first `n_original` agent values (§4.2 adds helper agents
    /// after all original ones).
    Restrict {
        /// Number of agents in the step's input instance.
        n_original: usize,
    },
    /// Pointwise rescale: `x_v = factor[v] · x'_v` (§4.3, §4.6).
    Scale {
        /// Per-agent multiplier.
        factor: Vec<f64>,
    },
    /// `x_v = max` over the copies of `v` (§4.4, §4.5); copies of old
    /// agent `v` occupy new ids `offsets[v] .. offsets[v+1]`.
    MaxOfCopies {
        /// Copy ranges, length `n_old + 1`.
        offsets: Vec<u32>,
    },
}

impl BackStep {
    /// Applies this step to a solution of the step's *output* instance.
    pub fn apply(&self, x: &Solution) -> Solution {
        match self {
            BackStep::Restrict { n_original } => {
                Solution::from_vec(x.as_slice()[..*n_original].to_vec())
            }
            BackStep::Scale { factor } => {
                assert_eq!(factor.len(), x.len());
                Solution::from_vec(
                    x.as_slice()
                        .iter()
                        .zip(factor)
                        .map(|(v, f)| v * f)
                        .collect(),
                )
            }
            BackStep::MaxOfCopies { offsets } => {
                let mut out = Vec::with_capacity(offsets.len() - 1);
                for w in offsets.windows(2) {
                    let (lo, hi) = (w[0] as usize, w[1] as usize);
                    out.push(
                        x.as_slice()[lo..hi]
                            .iter()
                            .copied()
                            .fold(f64::NEG_INFINITY, f64::max),
                    );
                }
                Solution::from_vec(out)
            }
        }
    }
}

/// Shape snapshot of one pipeline stage, for size-blowup reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageInfo {
    /// Which transformation produced this stage.
    pub name: &'static str,
    /// Agents after the stage.
    pub n_agents: usize,
    /// Constraints after the stage.
    pub n_constraints: usize,
    /// Objectives after the stage.
    pub n_objectives: usize,
}

impl StageInfo {
    fn of(name: &'static str, inst: &Instance) -> Self {
        StageInfo {
            name,
            n_agents: inst.n_agents(),
            n_constraints: inst.n_constraints(),
            n_objectives: inst.n_objectives(),
        }
    }
}

/// A transformed instance with its reverse mapping chain.
#[derive(Clone, Debug)]
pub struct Transformed {
    /// The final (special-form) instance.
    pub instance: Instance,
    steps: Vec<BackStep>,
    /// Sizes after each stage (first entry is the input).
    pub trace: Vec<StageInfo>,
}

impl Transformed {
    /// Maps a solution of the transformed instance back to the original.
    pub fn map_back(&self, x: &Solution) -> Solution {
        let mut cur = x.clone();
        for step in self.steps.iter().rev() {
            cur = step.apply(&cur);
        }
        cur
    }
}

/// §4.2 — augments every degree-1 constraint with the 6-node gadget
/// `{s, t, u} × {h, ℓ, j}` so that `|Vi| ≥ 2` everywhere. The gadget's
/// objectives are padded with the coefficient `2·Σ_{w∈Vk} c_kw·cap(w)`
/// (an upper bound on twice the optimum), so they never bind.
pub fn augment_singleton_constraints(inst: &Instance) -> (Instance, BackStep) {
    let n = inst.n_agents();
    let mut b = InstanceBuilder::with_agents(n);
    let mut gadget_rows_cons: Vec<Vec<(AgentId, f64)>> = Vec::new();
    let mut gadget_rows_obj: Vec<Vec<(AgentId, f64)>> = Vec::new();

    // Original constraints keep their indices (patched in place); the
    // gadget rows are appended after them.
    let mut patched: Vec<Vec<(AgentId, f64)>> = Vec::new();
    for i in inst.constraints() {
        let row = inst.constraint_row(i);
        let mut new_row: Vec<(AgentId, f64)> = row.iter().map(|e| (e.agent, e.coef)).collect();
        if row.len() == 1 {
            let v = row[0].agent;
            // The objective k ∈ Kv used to size the padding coefficient.
            let k = inst
                .agent_objectives(v)
                .first()
                .expect("standing assumption: |Kv| ≥ 1")
                .obj;
            let big: f64 = inst
                .objective_row(k)
                .iter()
                .map(|e| e.coef * inst.agent_cap(e.agent))
                .sum();
            assert!(
                big.is_finite(),
                "padding coefficient must be finite; run validate::check first"
            );
            let s = b.add_agent();
            let t = b.add_agent();
            let u = b.add_agent();
            // a_is = 1: s joins the singleton constraint (last port, as
            // the paper prescribes).
            new_row.push((s, 1.0));
            // j: a_jt = a_ju = 1.
            gadget_rows_cons.push(vec![(t, 1.0), (u, 1.0)]);
            // h: c_hs = 1, c_ht = 2·big;  ℓ: c_ℓs = 1, c_ℓu = 2·big.
            gadget_rows_obj.push(vec![(s, 1.0), (t, 2.0 * big)]);
            gadget_rows_obj.push(vec![(s, 1.0), (u, 2.0 * big)]);
        }
        patched.push(new_row);
    }
    for row in &patched {
        b.add_constraint(row).expect("patched row is valid");
    }
    for row in &gadget_rows_cons {
        b.add_constraint(row).expect("gadget constraint");
    }
    for k in inst.objectives() {
        let row: Vec<(AgentId, f64)> = inst
            .objective_row(k)
            .iter()
            .map(|e| (e.agent, e.coef))
            .collect();
        b.add_objective(&row).expect("copied objective");
    }
    for row in &gadget_rows_obj {
        b.add_objective(row).expect("gadget objective");
    }
    (
        b.build().expect("4.2 output builds"),
        BackStep::Restrict { n_original: n },
    )
}

/// §4.3 — replaces every constraint of degree `m > 2` with its
/// `m·(m−1)/2` pairwise restrictions. Back-map:
/// `x_v = 2 x'_v / max_{i∈Iv} |Vi|` — the step that costs the factor
/// `ΔI/2` in Theorem 1.
pub fn reduce_constraint_degree(inst: &Instance) -> (Instance, BackStep) {
    let n = inst.n_agents();
    let mut b = InstanceBuilder::with_agents(n);
    for i in inst.constraints() {
        let row = inst.constraint_row(i);
        if row.len() <= 2 {
            let r: Vec<(AgentId, f64)> = row.iter().map(|e| (e.agent, e.coef)).collect();
            b.add_constraint(&r).expect("copied constraint");
        } else {
            for p in 0..row.len() {
                for q in p + 1..row.len() {
                    b.add_constraint(&[(row[p].agent, row[p].coef), (row[q].agent, row[q].coef)])
                        .expect("pair constraint");
                }
            }
        }
    }
    for k in inst.objectives() {
        let row: Vec<(AgentId, f64)> = inst
            .objective_row(k)
            .iter()
            .map(|e| (e.agent, e.coef))
            .collect();
        b.add_objective(&row).expect("copied objective");
    }
    let factor: Vec<f64> = inst
        .agents()
        .map(|v| {
            let max_deg = inst
                .agent_constraints(v)
                .iter()
                .map(|e| inst.constraint_row(e.cons).len())
                .max()
                .unwrap_or(2)
                .max(2);
            2.0 / max_deg as f64
        })
        .collect();
    (
        b.build().expect("4.3 output builds"),
        BackStep::Scale { factor },
    )
}

/// Cartesian product of copy choices for a constraint row — §4.4/§4.5
/// replace a constraint by one copy per combination of its agents'
/// copies (applying the paper's per-agent replacement once per agent).
fn product_constraints(b: &mut InstanceBuilder, row: &[(Vec<AgentId>, f64)]) {
    // Iterative odometer over copy choices, lexicographic in port order.
    let mut idx = vec![0usize; row.len()];
    loop {
        let cons: Vec<(AgentId, f64)> = row
            .iter()
            .zip(&idx)
            .map(|((copies, coef), &c)| (copies[c], *coef))
            .collect();
        b.add_constraint(&cons).expect("product constraint");
        // Advance odometer.
        let mut pos = row.len();
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < row[pos].0.len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// §4.4 — gives every agent a unique objective: an agent `v` with
/// `|Kv| = m > 1` becomes `m` copies, one per objective; each constraint
/// through `v` is replicated once per copy (iterating over all its
/// agents yields the cartesian product of copy choices).
pub fn split_multi_objective_agents(inst: &Instance) -> (Instance, BackStep) {
    let n = inst.n_agents();
    let mut b = InstanceBuilder::new();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    // copies[v][slot] = the copy of v dedicated to its slot-th objective.
    let mut copies: Vec<Vec<AgentId>> = Vec::with_capacity(n);
    for v in inst.agents() {
        let m = inst.agent_objectives(v).len().max(1);
        let c: Vec<AgentId> = (0..m).map(|_| b.add_agent()).collect();
        copies.push(c);
        offsets.push(b.n_agents() as u32);
    }
    for i in inst.constraints() {
        let row: Vec<(Vec<AgentId>, f64)> = inst
            .constraint_row(i)
            .iter()
            .map(|e| (copies[e.agent.idx()].clone(), e.coef))
            .collect();
        product_constraints(&mut b, &row);
    }
    for k in inst.objectives() {
        let row: Vec<(AgentId, f64)> = inst
            .objective_row(k)
            .iter()
            .map(|e| {
                let slot = inst
                    .agent_objectives(e.agent)
                    .iter()
                    .position(|ao| ao.obj == k)
                    .expect("transpose consistency");
                (copies[e.agent.idx()][slot], e.coef)
            })
            .collect();
        b.add_objective(&row).expect("objective with copies");
    }
    (
        b.build().expect("4.4 output builds"),
        BackStep::MaxOfCopies { offsets },
    )
}

/// §4.5 — splits the unique agent of every degree-1 objective into two
/// half-weight copies so that `|Vk| ≥ 2` everywhere.
///
/// Requires `|Kv| ≤ 1` (run §4.4 first).
pub fn augment_singleton_objectives(inst: &Instance) -> (Instance, BackStep) {
    let n = inst.n_agents();
    let mut b = InstanceBuilder::new();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut copies: Vec<Vec<AgentId>> = Vec::with_capacity(n);
    for v in inst.agents() {
        let objs = inst.agent_objectives(v);
        assert!(objs.len() <= 1, "run §4.4 before §4.5");
        let split = objs
            .first()
            .is_some_and(|ao| inst.objective_row(ao.obj).len() == 1);
        let m = if split { 2 } else { 1 };
        let c: Vec<AgentId> = (0..m).map(|_| b.add_agent()).collect();
        copies.push(c);
        offsets.push(b.n_agents() as u32);
    }
    for i in inst.constraints() {
        let row: Vec<(Vec<AgentId>, f64)> = inst
            .constraint_row(i)
            .iter()
            .map(|e| (copies[e.agent.idx()].clone(), e.coef))
            .collect();
        product_constraints(&mut b, &row);
    }
    for k in inst.objectives() {
        let row = inst.objective_row(k);
        let new_row: Vec<(AgentId, f64)> = if row.len() == 1 {
            let v = row[0].agent;
            let c = row[0].coef;
            vec![(copies[v.idx()][0], c / 2.0), (copies[v.idx()][1], c / 2.0)]
        } else {
            row.iter()
                .map(|e| (copies[e.agent.idx()][0], e.coef))
                .collect()
        };
        b.add_objective(&new_row).expect("objective row");
    }
    (
        b.build().expect("4.5 output builds"),
        BackStep::MaxOfCopies { offsets },
    )
}

/// §4.6 — normalises `c_kv = 1` by dividing agent `v`'s column (its
/// `a_iv` and its single `c_kv`) by `c_{k(v)v}`. Back-map divides by the
/// same factor. Requires `|Kv| ≤ 1`.
pub fn normalize_objective_coefficients(inst: &Instance) -> (Instance, BackStep) {
    let n = inst.n_agents();
    let mut col = vec![1.0f64; n];
    for v in inst.agents() {
        let objs = inst.agent_objectives(v);
        assert!(objs.len() <= 1, "run §4.4 before §4.6");
        if let Some(ao) = objs.first() {
            col[v.idx()] = ao.coef;
        }
    }
    let mut b = InstanceBuilder::with_agents(n);
    for i in inst.constraints() {
        let row: Vec<(AgentId, f64)> = inst
            .constraint_row(i)
            .iter()
            .map(|e| (e.agent, e.coef / col[e.agent.idx()]))
            .collect();
        b.add_constraint(&row).expect("scaled constraint");
    }
    for k in inst.objectives() {
        let row: Vec<(AgentId, f64)> = inst
            .objective_row(k)
            .iter()
            .map(|e| (e.agent, 1.0))
            .collect();
        b.add_objective(&row).expect("unit objective");
    }
    let factor: Vec<f64> = col.iter().map(|c| 1.0 / c).collect();
    (
        b.build().expect("4.6 output builds"),
        BackStep::Scale { factor },
    )
}

/// Runs the full §4 pipeline, producing a special-form instance and the
/// composed back-map. Panics (via the per-step asserts) on instances
/// violating the standing assumptions — call
/// `mmlp_instance::validate::check` first.
pub fn to_special_form(inst: &Instance) -> Transformed {
    let mut trace = vec![StageInfo::of("input", inst)];
    let mut steps = Vec::with_capacity(5);

    let (i2, s2) = augment_singleton_constraints(inst);
    trace.push(StageInfo::of("4.2 constraints>=2", &i2));
    steps.push(s2);

    let (i3, s3) = reduce_constraint_degree(&i2);
    trace.push(StageInfo::of("4.3 constraints=2", &i3));
    steps.push(s3);

    let (i4, s4) = split_multi_objective_agents(&i3);
    trace.push(StageInfo::of("4.4 |Kv|=1", &i4));
    steps.push(s4);

    let (i5, s5) = augment_singleton_objectives(&i4);
    trace.push(StageInfo::of("4.5 |Vk|>=2", &i5));
    steps.push(s5);

    let (i6, s6) = normalize_objective_coefficients(&i5);
    trace.push(StageInfo::of("4.6 c=1", &i6));
    steps.push(s6);

    Transformed {
        instance: i6,
        steps,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::random::{random_general, RandomConfig};
    use mmlp_gen::special::is_special_form;
    use mmlp_instance::{DegreeStats, InstanceBuilder};
    use mmlp_lp::solve_maxmin;

    fn small_cfg() -> RandomConfig {
        RandomConfig {
            n_agents: 10,
            n_constraints: 7,
            n_objectives: 6,
            delta_i: 3,
            delta_k: 3,
            coef_range: (0.5, 2.0),
        }
    }

    /// An instance with a singleton constraint and a singleton objective.
    fn awkward() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 2.0)]).unwrap(); // singleton
        b.add_constraint(&[(v0, 1.0), (v1, 1.0), (v2, 0.5)])
            .unwrap(); // degree 3
        b.add_objective(&[(v0, 1.0), (v1, 3.0)]).unwrap();
        b.add_objective(&[(v1, 1.0), (v2, 1.0)]).unwrap();
        b.add_objective(&[(v2, 2.0)]).unwrap(); // singleton objective
        b.build().unwrap()
    }

    #[test]
    fn step_42_establishes_vi_ge_2_and_preserves_optimum() {
        let inst = awkward();
        let (out, back) = augment_singleton_constraints(&inst);
        assert!(DegreeStats::of(&out).min_vi >= 2);
        let opt_in = solve_maxmin(&inst).unwrap().omega;
        let opt_out = solve_maxmin(&out).unwrap();
        assert!(
            (opt_in - opt_out.omega).abs() < 1e-6,
            "4.2 preserves the optimum: {opt_in} vs {}",
            opt_out.omega
        );
        let mapped = back.apply(&opt_out.solution);
        assert_eq!(mapped.len(), inst.n_agents());
        assert!(mapped.is_feasible(&inst, 1e-7));
        assert!((mapped.utility(&inst) - opt_in).abs() < 1e-6);
    }

    #[test]
    fn step_43_establishes_vi_eq_2_with_delta_i_accounting() {
        let inst = awkward();
        let (ge2, _) = augment_singleton_constraints(&inst);
        let (out, back) = reduce_constraint_degree(&ge2);
        let s = DegreeStats::of(&out);
        assert_eq!(s.delta_i, 2);
        assert_eq!(s.min_vi, 2);
        // The degree-3 constraint became 3 pairs.
        assert_eq!(
            out.n_constraints(),
            ge2.n_constraints() + 2,
            "C(3,2) - 1 extra rows"
        );
        // Back-mapped solutions are feasible and lose at most ΔI/2.
        let opt_out = solve_maxmin(&out).unwrap();
        let mapped = back.apply(&opt_out.solution);
        assert!(mapped.is_feasible(&ge2, 1e-7));
        let delta_i = DegreeStats::of(&ge2).delta_i as f64;
        assert!(
            mapped.utility(&ge2) >= 2.0 * opt_out.omega / delta_i - 1e-9,
            "omega(x) >= 2 omega'(x')/Delta_I"
        );
        // And the optimum cannot drop through 4.3.
        let opt_in = solve_maxmin(&ge2).unwrap().omega;
        assert!(
            opt_out.omega >= opt_in - 1e-7,
            "original opt stays feasible"
        );
    }

    #[test]
    fn step_44_gives_unique_objectives_and_preserves_optimum() {
        let inst = awkward();
        let (ge2, _) = augment_singleton_constraints(&inst);
        let (eq2, _) = reduce_constraint_degree(&ge2);
        let (out, back) = split_multi_objective_agents(&eq2);
        assert!(out.agents().all(|v| out.agent_objectives(v).len() == 1));
        let opt_in = solve_maxmin(&eq2).unwrap().omega;
        let opt_out = solve_maxmin(&out).unwrap();
        assert!(
            (opt_in - opt_out.omega).abs() < 1e-6,
            "4.4 preserves optimum"
        );
        let mapped = back.apply(&opt_out.solution);
        assert!(mapped.is_feasible(&eq2, 1e-7));
        assert!(mapped.utility(&eq2) >= opt_out.omega - 1e-6);
    }

    #[test]
    fn step_44_cartesian_product_of_copies() {
        // Constraint {v, w} where v has 2 objectives and w has 3: the
        // constraint must become 6 copies.
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (w, 2.0)]).unwrap();
        b.add_objective(&[(w, 3.0)]).unwrap();
        let inst = b.build().unwrap();
        let (out, _) = split_multi_objective_agents(&inst);
        assert_eq!(out.n_agents(), 5);
        assert_eq!(out.n_constraints(), 6);
        assert!(out.agents().all(|v| out.agent_objectives(v).len() == 1));
    }

    #[test]
    fn step_45_pads_singleton_objectives() {
        let inst = awkward();
        let (a, _) = augment_singleton_constraints(&inst);
        let (b2, _) = reduce_constraint_degree(&a);
        let (c, _) = split_multi_objective_agents(&b2);
        let (out, back) = augment_singleton_objectives(&c);
        assert!(DegreeStats::of(&out).min_vk >= 2);
        let opt_in = solve_maxmin(&c).unwrap().omega;
        let opt_out = solve_maxmin(&out).unwrap();
        assert!(
            (opt_in - opt_out.omega).abs() < 1e-6,
            "4.5 preserves optimum"
        );
        let mapped = back.apply(&opt_out.solution);
        assert!(mapped.is_feasible(&c, 1e-7));
        assert!(mapped.utility(&c) >= opt_out.omega - 1e-6);
    }

    #[test]
    fn step_46_normalises_and_preserves_optimum() {
        let inst = awkward();
        let (a, _) = augment_singleton_constraints(&inst);
        let (b2, _) = reduce_constraint_degree(&a);
        let (c, _) = split_multi_objective_agents(&b2);
        let (d, _) = augment_singleton_objectives(&c);
        let (out, back) = normalize_objective_coefficients(&d);
        for k in out.objectives() {
            assert!(out.objective_row(k).iter().all(|e| e.coef == 1.0));
        }
        let opt_in = solve_maxmin(&d).unwrap().omega;
        let opt_out = solve_maxmin(&out).unwrap();
        assert!(
            (opt_in - opt_out.omega).abs() < 1e-6,
            "4.6 preserves optimum"
        );
        let mapped = back.apply(&opt_out.solution);
        assert!(mapped.is_feasible(&d, 1e-7));
        assert!((mapped.utility(&d) - opt_in).abs() < 1e-6);
    }

    #[test]
    fn full_pipeline_reaches_special_form() {
        for seed in 0..6 {
            let inst = random_general(&small_cfg(), seed);
            let t = to_special_form(&inst);
            assert!(
                is_special_form(&t.instance),
                "seed {seed}: pipeline output must be special"
            );
            assert_eq!(t.trace.len(), 6);
        }
    }

    #[test]
    fn pipeline_backmap_preserves_feasibility_and_accounting() {
        for seed in 0..6 {
            let inst = random_general(&small_cfg(), seed);
            let t = to_special_form(&inst);
            let opt_special = solve_maxmin(&t.instance).unwrap();
            let mapped = t.map_back(&opt_special.solution);
            assert_eq!(mapped.len(), inst.n_agents());
            assert!(
                mapped.is_feasible(&inst, 1e-6),
                "seed {seed}: mapped solution feasible"
            );
            // End-to-end accounting: only §4.3 loses, by ΔI/2.
            let delta_i = DegreeStats::of(&inst).delta_i.max(2) as f64;
            assert!(
                mapped.utility(&inst) >= 2.0 * opt_special.omega / delta_i - 1e-6,
                "seed {seed}: omega = {} < 2*{}/{delta_i}",
                mapped.utility(&inst),
                opt_special.omega
            );
            // Total optimum relation: opt' ≥ opt (solutions of the input
            // survive 4.2–4.6 forwards).
            let opt_in = solve_maxmin(&inst).unwrap().omega;
            assert!(
                opt_special.omega >= opt_in - 1e-6,
                "seed {seed}: special opt {} < original {opt_in}",
                opt_special.omega
            );
        }
    }

    #[test]
    fn pipeline_is_identity_shaped_on_special_instances() {
        use mmlp_gen::special::{random_special_form, SpecialFormConfig};
        let inst = random_special_form(&SpecialFormConfig::default(), 0);
        let t = to_special_form(&inst);
        assert_eq!(t.instance.n_agents(), inst.n_agents());
        assert_eq!(t.instance.n_constraints(), inst.n_constraints());
        assert_eq!(t.instance.n_objectives(), inst.n_objectives());
        // And back-mapping is the identity on solutions.
        let x = Solution::from_vec((0..inst.n_agents()).map(|j| j as f64 * 0.01).collect());
        let back = t.map_back(&x);
        for v in inst.agents() {
            assert!((back.value(v) - x.value(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn backstep_primitives() {
        let x = Solution::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let r = BackStep::Restrict { n_original: 2 }.apply(&x);
        assert_eq!(r.as_slice(), &[1.0, 2.0]);
        let s = BackStep::Scale {
            factor: vec![2.0, 0.5, 1.0, 0.0],
        }
        .apply(&x);
        assert_eq!(s.as_slice(), &[2.0, 1.0, 3.0, 0.0]);
        let m = BackStep::MaxOfCopies {
            offsets: vec![0, 3, 4],
        }
        .apply(&x);
        assert_eq!(m.as_slice(), &[3.0, 4.0]);
    }
}
