//! # `mmlp-core`
//!
//! The paper's primary contribution: a **local algorithm** (constant-time
//! distributed algorithm) for max-min linear programs whose approximation
//! ratio `ΔI (1 − 1/ΔK) + ε` matches the unconditional lower bound for
//! local algorithms (Floréen–Kaasinen–Kaski–Suomela, SPAA 2009).
//!
//! Module map, following the paper's structure:
//!
//! | paper | module | content |
//! |-------|--------|---------|
//! | §3 | [`unfold`] | unfolding / universal covers, view equality, the port-numbering indistinguishability the algorithm exploits |
//! | §4 | [`transform`] | the five local transformations to *special form* with composable back-maps and ratio accounting |
//! | §5 | [`special`] | the special-form wrapper (`|Vi| = 2`, `|Kv| = 1`, `c_kv = 1`) |
//! | §5.1–5.2 | [`tree_bound`] | alternating trees `A_u`, the `f±` recursions, the per-agent upper bound `t_u` via bisection |
//! | §5.3 | [`smoothing`] | smoothed bounds `s_v`, the `g±` recursions, the output (18) |
//! | §5 | [`solver`] | the end-to-end [`solver::LocalSolver`] |
//! | §5 | [`distributed`] | the same algorithm as an actual message-passing protocol on `mmlp-net`, with round/byte accounting |
//! | §1.3 | [`dynamic`] | the dynamic-algorithm corollary: constant-work solution repair under local input changes |
//! | §6 | [`layers`] | layers, up/down partitions, shifting solutions `y(j)` — the analysis artefacts, machine-checked in tests |
//! | §1 | [`safe`] | the prior-work *safe algorithm* baseline (factor ΔI) |
//! | §1 | [`packing`] | mixed packing/covering LPs and nonnegative linear systems via max-min LPs |
//! | Thm 1 | [`ratio`] | the threshold `ΔI(1−1/ΔK)`, the guarantee `ΔI(1−1/ΔK)(1+1/(R−1))`, and `R(ε)` |

pub mod distributed;
pub mod dynamic;
pub mod layers;
pub mod packing;
pub mod ratio;
pub mod safe;
pub mod smoothing;
pub mod solver;
pub mod special;
pub mod transform;
pub mod tree_bound;
pub mod unfold;

pub use ratio::{guarantee, special_guarantee, threshold};
pub use solver::{LocalSolver, LocalSolverOutput};
pub use special::SpecialForm;
