//! Theorem 1's quantities: the unconditional local approximability
//! threshold, the algorithm's guarantee as a function of `R`, and the
//! inverse map `ε → R`.

/// The threshold `ΔI (1 − 1/ΔK)`: no local algorithm achieves a better
/// approximation ratio (the matching lower bound of Theorem 1), and this
/// algorithm achieves `threshold + ε` for every `ε > 0`.
///
/// Requires the non-trivial regime `ΔI ≥ 2`, `ΔK ≥ 2` (the other cases
/// are exactly solvable by local algorithms; see §1).
pub fn threshold(delta_i: usize, delta_k: usize) -> f64 {
    assert!(delta_i >= 2 && delta_k >= 2, "thresholds need ΔI, ΔK ≥ 2");
    delta_i as f64 * (1.0 - 1.0 / delta_k as f64)
}

/// The proved guarantee of the algorithm at locality parameter `R ≥ 2`
/// (§6.3): `ΔI (1 − 1/ΔK)(1 + 1/(R−1))`. For `R = 2` this reads
/// `2·threshold`; as `R → ∞` it tends to the threshold.
pub fn guarantee(delta_i: usize, delta_k: usize, big_r: usize) -> f64 {
    assert!(big_r >= 2, "the paper requires R ≥ 2");
    threshold(delta_i, delta_k) * (1.0 + 1.0 / (big_r as f64 - 1.0))
}

/// The special-form guarantee `2 (1 − 1/ΔK)(1 + 1/(R−1))` proved in §6
/// before the §4.3 accounting multiplies it by `ΔI/2`.
pub fn special_guarantee(delta_k: usize, big_r: usize) -> f64 {
    guarantee(2, delta_k, big_r)
}

/// The smallest `R` for which [`guarantee`] is within `ε` of the
/// threshold — the constructive content of Theorem 1:
/// `threshold / (R−1) ≤ ε  ⇔  R ≥ threshold/ε + 1`.
pub fn r_for_epsilon(delta_i: usize, delta_k: usize, epsilon: f64) -> usize {
    assert!(epsilon > 0.0, "Theorem 1 needs ε > 0");
    let needed = threshold(delta_i, delta_k) / epsilon + 1.0;
    (needed.ceil() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_values() {
        assert_eq!(threshold(2, 2), 1.0);
        assert!((threshold(2, 3) - 4.0 / 3.0).abs() < 1e-12);
        assert!((threshold(3, 3) - 2.0).abs() < 1e-12);
        assert_eq!(threshold(4, 2), 2.0);
    }

    #[test]
    fn guarantee_tends_to_threshold() {
        let th = threshold(3, 4);
        assert!((guarantee(3, 4, 2) - 2.0 * th).abs() < 1e-12);
        assert!(guarantee(3, 4, 100) < th + 0.03);
        let mut prev = f64::INFINITY;
        for big_r in 2..20 {
            let g = guarantee(3, 4, big_r);
            assert!(g < prev, "guarantee strictly improves with R");
            assert!(g > th, "but never beats the threshold");
            prev = g;
        }
    }

    #[test]
    fn special_guarantee_is_delta_i_2() {
        assert_eq!(special_guarantee(3, 4), guarantee(2, 3, 4));
    }

    #[test]
    fn r_for_epsilon_inverts_guarantee() {
        for (di, dk) in [(2, 2), (2, 3), (3, 3), (5, 4)] {
            for eps in [0.5, 0.1, 0.01] {
                let big_r = r_for_epsilon(di, dk, eps);
                assert!(
                    guarantee(di, dk, big_r) <= threshold(di, dk) + eps + 1e-12,
                    "ΔI={di} ΔK={dk} ε={eps}: R={big_r} misses"
                );
                if big_r > 2 {
                    assert!(
                        guarantee(di, dk, big_r - 1) > threshold(di, dk) + eps - 1e-12,
                        "R is minimal"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ΔI, ΔK ≥ 2")]
    fn trivial_degrees_rejected() {
        threshold(1, 3);
    }
}
