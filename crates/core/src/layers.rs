//! §6: layers, the up/down partition and the shifting strategy — the
//! analysis artefacts behind Lemmas 8–12, exposed so that tests and the
//! experiment harness can machine-check them.
//!
//! The paper assigns an integer *layer* to every node of the (infinite,
//! tree-shaped) unfolding using the Figure 3 edge weights, giving the
//! residues of Lemma 8:
//!
//! ```text
//! objectives ≡ 0,  down-agents ≡ 1,  constraints ≡ 2,  up-agents ≡ 3   (mod 4)
//! ```
//!
//! A finite special-form instance never admits a consistent **integer**
//! layering — walking any cycle strictly increases the layer (this is
//! exactly why no local algorithm can compute layers, §2). But the
//! shifting solutions `y(j)` of §6.1 only read the layer **modulo 4R**,
//! and a consistent mod-`4R` layering exists whenever every cycle's
//! layer gain is divisible by `4R` (e.g. the `layered_special` fixtures
//! with `R | periods`). [`assign_layers_mod`] computes such an
//! assignment from a declared up/down partition, validating the §6
//! partition conditions; the `y(j)` of eq. (19) and their average (20)
//! are then available for direct verification of Lemmas 9 and 10.

use crate::smoothing::GTables;
use crate::special::SpecialForm;
use mmlp_instance::{AgentId, CommGraph, Node, ObjectiveId, Solution};

/// Why a layer assignment could not be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayerError {
    /// An objective does not have exactly one up-agent.
    ObjectivePartition(ObjectiveId),
    /// A constraint does not have exactly one up- and one down-agent.
    ConstraintPartition(mmlp_instance::ConstraintId),
    /// Two walks assign different residues to the same node — the
    /// instance has a cycle whose layer gain is not divisible by the
    /// modulus.
    Inconsistent {
        /// Flat node index where the conflict appeared.
        node: u32,
    },
    /// The modulus must be a positive multiple of 4.
    BadModulus(usize),
}

impl std::fmt::Display for LayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayerError::ObjectivePartition(k) => {
                write!(f, "objective {k} does not have exactly one up-agent")
            }
            LayerError::ConstraintPartition(i) => {
                write!(
                    f,
                    "constraint {i} does not pair one up- with one down-agent"
                )
            }
            LayerError::Inconsistent { node } => {
                write!(f, "layer residues conflict at flat node {node}")
            }
            LayerError::BadModulus(m) => write!(f, "modulus {m} is not a positive multiple of 4"),
        }
    }
}

impl std::error::Error for LayerError {}

/// A consistent layer assignment modulo `modulus`.
#[derive(Clone, Debug)]
pub struct LayerAssignment {
    /// The modulus (typically `4R`).
    pub modulus: usize,
    /// Layer residue per flat node of the communication graph.
    pub layer: Vec<u32>,
    /// The up/down partition used (per agent).
    pub is_up: Vec<bool>,
}

impl LayerAssignment {
    /// The layer residue of an agent.
    pub fn agent_layer(&self, v: AgentId) -> u32 {
        self.layer[v.idx()]
    }
}

/// Computes layers mod `modulus` (a multiple of 4) from a declared
/// up/down partition, validating the §6 partition conditions and the
/// consistency of the residues.
pub fn assign_layers_mod(
    sf: &SpecialForm,
    is_up: &[bool],
    modulus: usize,
    root: ObjectiveId,
) -> Result<LayerAssignment, LayerError> {
    if modulus == 0 || !modulus.is_multiple_of(4) {
        return Err(LayerError::BadModulus(modulus));
    }
    let inst = sf.instance();
    assert_eq!(is_up.len(), inst.n_agents());

    // Partition validity (§6: (i) constraints pair up/down, (ii) each
    // objective has exactly one up-agent).
    for k in inst.objectives() {
        let ups = inst
            .objective_row(k)
            .iter()
            .filter(|e| is_up[e.agent.idx()])
            .count();
        if ups != 1 {
            return Err(LayerError::ObjectivePartition(k));
        }
    }
    for i in inst.constraints() {
        let ups = inst
            .constraint_row(i)
            .iter()
            .filter(|e| is_up[e.agent.idx()])
            .count();
        if ups != 1 {
            return Err(LayerError::ConstraintPartition(i));
        }
    }

    let g = CommGraph::new(inst);
    let m = modulus as i64;
    let mut layer = vec![u32::MAX; g.n_nodes()];
    let root_flat = g.objective_index(root);
    layer[root_flat as usize] = 0;
    let mut queue = vec![root_flat];
    let mut head = 0;
    while head < queue.len() {
        let x = queue[head];
        head += 1;
        let lx = layer[x as usize] as i64;
        for adj in g.neighbors(x) {
            // Signed layer offset along this edge (Figure 3 weights).
            let delta: i64 = match (g.node(x), g.node(adj.to)) {
                (Node::Objective(_), Node::Agent(v)) => {
                    if is_up[v.idx()] {
                        -1 // the up-agent sits above its objective
                    } else {
                        1
                    }
                }
                (Node::Agent(v), Node::Objective(_)) => {
                    if is_up[v.idx()] {
                        1
                    } else {
                        -1
                    }
                }
                (Node::Constraint(_), Node::Agent(v)) => {
                    if is_up[v.idx()] {
                        1 // the up-agent sits below the constraint
                    } else {
                        -1
                    }
                }
                (Node::Agent(v), Node::Constraint(_)) => {
                    if is_up[v.idx()] {
                        -1
                    } else {
                        1
                    }
                }
                _ => unreachable!("the communication graph is bipartite"),
            };
            let want = ((lx + delta).rem_euclid(m)) as u32;
            let slot = &mut layer[adj.to as usize];
            if *slot == u32::MAX {
                *slot = want;
                queue.push(adj.to);
            } else if *slot != want {
                return Err(LayerError::Inconsistent { node: adj.to });
            }
        }
    }

    Ok(LayerAssignment {
        modulus,
        layer,
        is_up: is_up.to_vec(),
    })
}

/// Decomposes an agent's layer residue per §6.1: writes
/// `ℓ ≡ 4(Rc + j) + 4d + e (mod 4R)` with `0 ≤ d ≤ R−1`, `e ∈ {−1, 1}`,
/// returning `(d, e)`.
fn decompose(layer: u32, modulus: usize, big_r: usize, j: usize) -> (usize, i32) {
    let l = layer as i64;
    let e: i64 = match l.rem_euclid(4) {
        1 => 1,
        3 => -1,
        other => panic!("agents live on odd layers, got residue {other}"),
    };
    let quarter = (l - e).rem_euclid(modulus as i64) / 4; // ≡ Rc + j + d
    let d = (quarter - j as i64).rem_euclid(big_r as i64) as usize;
    (d, e as i32)
}

/// The shifting solution `y(j)` of eq. (19): passive agents
/// (`d = R−1`) output 0; up-agents output `g⁻_{v, r−d}`; down-agents
/// output `g⁺_{v, r−d}`.
pub fn shifted_solution(
    sf: &SpecialForm,
    layers: &LayerAssignment,
    g: &GTables,
    big_r: usize,
    j: usize,
) -> Solution {
    assert!(j < big_r, "shift parameter j ∈ 0..R");
    let r = big_r - 2;
    let mut y = vec![0.0f64; sf.n_agents()];
    for (v, slot) in y.iter_mut().enumerate() {
        let (d, e) = decompose(layers.layer[v], layers.modulus, big_r, j);
        debug_assert_eq!(
            e == -1,
            layers.is_up[v],
            "up-agents have e = −1 regardless of j (§6.1)"
        );
        *slot = if d == big_r - 1 {
            0.0 // passive layer
        } else if e == -1 {
            g.g_minus[r - d][v]
        } else {
            g.g_plus[r - d][v]
        };
    }
    Solution::from_vec(y)
}

/// The averaged solution `y` of eq. (20):
/// `y_v = (1/R) Σ_d g⁻_{v,d}` for up-agents, `(1/R) Σ_d g⁺_{v,d}` for
/// down-agents. Equals the average of the `R` shifted solutions.
pub fn averaged_solution(
    sf: &SpecialForm,
    layers: &LayerAssignment,
    g: &GTables,
    big_r: usize,
) -> Solution {
    let r = big_r - 2;
    let mut y = vec![0.0f64; sf.n_agents()];
    for (v, slot) in y.iter_mut().enumerate() {
        let sum: f64 = (0..=r)
            .map(|d| {
                if layers.is_up[v] {
                    g.g_minus[d][v]
                } else {
                    g.g_plus[d][v]
                }
            })
            .sum();
        *slot = sum / big_r as f64;
    }
    Solution::from_vec(y)
}

/// The §6.2 identity behind eq. (18): the algorithm's output is the
/// average of the two role-choices for every agent,
/// `x_v = (y↑_v + y↓_v)/2` where `y↑` treats `v` as an up-agent and `y↓`
/// as a down-agent. Returns the reconstructed solution for comparison
/// with `smoothing::output`.
pub fn role_average(sf: &SpecialForm, g: &GTables, big_r: usize) -> Solution {
    let r = big_r - 2;
    let mut x = vec![0.0f64; sf.n_agents()];
    for (v, slot) in x.iter_mut().enumerate() {
        let up: f64 = (0..=r).map(|d| g.g_minus[d][v]).sum::<f64>() / big_r as f64;
        let down: f64 = (0..=r).map(|d| g.g_plus[d][v]).sum::<f64>() / big_r as f64;
        *slot = 0.5 * (up + down);
    }
    Solution::from_vec(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoothing::{self, solve_special};
    use mmlp_gen::special::{cycle_special, layered_special};

    /// Alternating up/down partition for the 4-periodic cycle: even
    /// agents up. Objectives pair {2t, 2t+1} (up first) and constraints
    /// pair {2t+1, 2t+2} (down first) — one up-agent in each.
    fn cycle_partition(n_agents: usize) -> Vec<bool> {
        (0..n_agents).map(|a| a % 2 == 0).collect()
    }

    #[test]
    fn cycle_layer_consistency_depends_on_modulus() {
        for (len, big_r, ok) in [(8, 2, true), (8, 4, true), (6, 4, false), (12, 3, true)] {
            let inst = cycle_special(len, 1.0);
            let sf = SpecialForm::new(inst).unwrap();
            let part = cycle_partition(sf.n_agents());
            let res = assign_layers_mod(&sf, &part, 4 * big_r, ObjectiveId::new(0));
            assert_eq!(res.is_ok(), ok, "len {len} R {big_r}: {res:?}");
        }
    }

    #[test]
    fn lemma8_residues_hold() {
        let (inst, is_up) = layered_special(4, 2, 3, (0.5, 2.0), 0);
        let sf = SpecialForm::new(inst).unwrap();
        let layers = assign_layers_mod(&sf, &is_up, 8, ObjectiveId::new(0)).unwrap();
        let g = CommGraph::new(sf.instance());
        for x in 0..g.n_nodes() as u32 {
            let l = layers.layer[x as usize] % 4;
            match g.node(x) {
                Node::Objective(_) => assert_eq!(l, 0, "objectives ≡ 0"),
                Node::Agent(v) => {
                    if is_up[v.idx()] {
                        assert_eq!(l, 3, "up-agents ≡ 3");
                    } else {
                        assert_eq!(l, 1, "down-agents ≡ 1");
                    }
                }
                Node::Constraint(_) => assert_eq!(l, 2, "constraints ≡ 2"),
            }
        }
    }

    #[test]
    fn bad_partition_is_rejected() {
        let (inst, mut is_up) = layered_special(4, 1, 3, (1.0, 1.0), 0);
        let sf = SpecialForm::new(inst).unwrap();
        is_up[0] = !is_up[0];
        assert!(assign_layers_mod(&sf, &is_up, 8, ObjectiveId::new(0)).is_err());
    }

    #[test]
    fn bad_modulus_is_rejected() {
        let (inst, is_up) = layered_special(4, 1, 2, (1.0, 1.0), 0);
        let sf = SpecialForm::new(inst).unwrap();
        assert_eq!(
            assign_layers_mod(&sf, &is_up, 6, ObjectiveId::new(0)).unwrap_err(),
            LayerError::BadModulus(6)
        );
    }

    #[test]
    fn lemma9_shifted_solutions() {
        // On layered fixtures with R | periods: every y(j) is feasible;
        // objectives on the passive layer have value 0, all others reach
        // min_{v∈Vk} s_v.
        for (periods, m, dk, big_r) in [(4, 1, 2, 2), (6, 2, 3, 3), (8, 2, 3, 4)] {
            let (inst, is_up) = layered_special(periods, m, dk, (0.5, 2.0), 42);
            let sf = SpecialForm::new(inst).unwrap();
            let layers = assign_layers_mod(&sf, &is_up, 4 * big_r, ObjectiveId::new(0)).unwrap();
            let run = solve_special(&sf, big_r, 1);
            let g = CommGraph::new(sf.instance());
            for j in 0..big_r {
                let y = shifted_solution(&sf, &layers, &run.g, big_r, j);
                assert!(
                    y.is_feasible(sf.instance(), 1e-9),
                    "Lemma 9 feasibility: periods {periods} R {big_r} j {j}"
                );
                for k in sf.instance().objectives() {
                    let lk = layers.layer[g.objective_index(k) as usize] as i64;
                    let passive = (lk - (4 * j as i64 - 4)).rem_euclid(4 * big_r as i64) == 0;
                    let val = y.objective_value(sf.instance(), k);
                    if passive {
                        assert!(val.abs() < 1e-9, "passive objective must read 0, got {val}");
                    } else {
                        let min_s = sf
                            .instance()
                            .objective_row(k)
                            .iter()
                            .map(|e| run.s[e.agent.idx()])
                            .fold(f64::INFINITY, f64::min);
                        assert!(
                            val >= min_s - 1e-9,
                            "active objective ≥ min s: {val} < {min_s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma10_averaged_solution() {
        let (inst, is_up) = layered_special(6, 2, 3, (0.5, 2.0), 7);
        let sf = SpecialForm::new(inst).unwrap();
        let big_r = 3;
        let layers = assign_layers_mod(&sf, &is_up, 4 * big_r, ObjectiveId::new(0)).unwrap();
        let run = solve_special(&sf, big_r, 1);
        let y = averaged_solution(&sf, &layers, &run.g, big_r);
        assert!(y.is_feasible(sf.instance(), 1e-9), "Lemma 10 feasibility");
        // y equals the mean of the R shifted solutions.
        let mut mean = Solution::zeros(sf.n_agents());
        for j in 0..big_r {
            let yj = shifted_solution(&sf, &layers, &run.g, big_r, j);
            for v in sf.instance().agents() {
                *mean.value_mut(v) += yj.value(v) / big_r as f64;
            }
        }
        for v in sf.instance().agents() {
            assert!((mean.value(v) - y.value(v)).abs() < 1e-12, "eq. (20)");
        }
        // And the objective bound.
        for k in sf.instance().objectives() {
            let min_s = sf
                .instance()
                .objective_row(k)
                .iter()
                .map(|e| run.s[e.agent.idx()])
                .fold(f64::INFINITY, f64::min);
            assert!(
                y.objective_value(sf.instance(), k) >= (1.0 - 1.0 / big_r as f64) * min_s - 1e-9,
                "Lemma 10 bound"
            );
        }
    }

    #[test]
    fn role_average_reproduces_the_output() {
        let (inst, _) = layered_special(6, 2, 3, (0.5, 2.0), 3);
        let sf = SpecialForm::new(inst).unwrap();
        let big_r = 3;
        let run = solve_special(&sf, big_r, 1);
        let rebuilt = role_average(&sf, &run.g, big_r);
        let reference = smoothing::output(&sf, &run.g, big_r);
        for v in sf.instance().agents() {
            assert!(
                (rebuilt.value(v) - reference.value(v)).abs() < 1e-12,
                "eq. (18) = role average (§6.2)"
            );
        }
    }
}
