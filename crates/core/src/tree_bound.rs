//! §5.1–§5.2: alternating trees `A_u` and the per-agent optimum `t_u`.
//!
//! For an agent `u`, the alternating tree `A_u` is the subgraph of the
//! *unfolding* of `G` induced by alternating paths from `u` through
//! `k(u)` of length ≤ `4r + 3` (plus `u`'s own constraints as leaves at
//! level −2). Its levels alternate
//!
//! ```text
//! level:  -2        -1     0      1        2      3      4    …  4r+2
//! node:   leaf cons u      k(u)   agents   cons   agents obj  …  leaf cons
//! ```
//!
//! The optimum `t_u` of the max-min LP restricted to `A_u` is an upper
//! bound on the utility of *any* feasible solution of `G` (Lemma 2), and
//! is characterised by the monotone recursions (5)–(7):
//!
//! * `f⁺` values are the **largest** the down-agents can take without
//!   violating the constraints below them,
//! * `f⁻` values are the **smallest** the up-agents can take so the
//!   objectives below them still reach `ω`,
//!
//! and `t_u` is the largest `ω ≥ 0` keeping all `f⁺ ≥ 0` (8) and
//! `f⁻_{u,u,r}(ω) ≤ min_i 1/a_iu` (9). Every `f±` is monotone in `ω`, so
//! the feasible set is an interval `[0, t_u]` and — as §5.2 remarks — a
//! **binary search** suffices; we bisect and return the certified
//! feasible lower end.
//!
//! Key implementation point: although `A_u` lives in the unfolding (an
//! infinite tree when `G` has cycles), the value `f±_{u,v,d}` depends
//! only on `(v, d)` and the recursion direction — a node's children in
//! `A_u` are determined by its agent and role, never by the walk history.
//! The evaluation therefore memoises on `(v, d)` and runs on the folded
//! graph `G` directly.

use crate::special::SpecialForm;
use mmlp_instance::{AgentId, Instance, InstanceBuilder};
use std::collections::HashMap;

/// Relative bisection tolerance for `t_u` (the returned value is the
/// feasible lower end, so `t_u` is never overestimated).
pub const BISECT_REL_TOL: f64 = 1e-12;

/// Evaluator of the `f±` recursions and the bound `t_u` for a fixed
/// locality parameter `R` (the paper's `R ≥ 2`; `r = R − 2`).
pub struct TreeBound<'a> {
    sf: &'a SpecialForm,
    r: u32,
}

/// Reusable memo tables for one `(u, ω)` evaluation.
#[derive(Default)]
pub struct Scratch {
    fp: HashMap<(u32, u32), f64>,
    fm: HashMap<(u32, u32), f64>,
}

impl Scratch {
    fn clear(&mut self) {
        self.fp.clear();
        self.fm.clear();
    }
}

impl<'a> TreeBound<'a> {
    /// Creates the evaluator; `big_r` is the paper's `R ≥ 2`.
    pub fn new(sf: &'a SpecialForm, big_r: usize) -> Self {
        assert!(big_r >= 2, "the paper requires R ≥ 2");
        TreeBound {
            sf,
            r: (big_r - 2) as u32,
        }
    }

    /// The depth parameter `r = R − 2`.
    pub fn r(&self) -> usize {
        self.r as usize
    }

    /// `f⁺_{u,v,d}(ω)` for a down-type agent `v` (level `4(r−d)+1`).
    /// `None` when a negative `f⁺` was encountered (condition (8) fails).
    fn f_plus(&self, v: u32, d: u32, omega: f64, sc: &mut Scratch) -> Option<f64> {
        if let Some(&val) = sc.fp.get(&(v, d)) {
            return Some(val);
        }
        let agent = AgentId::new(v);
        let val = if d == 0 {
            // (5): the deepest agents take the largest single-constraint-
            // feasible value.
            self.sf.cap(agent)
        } else {
            // (7): largest value not violating any constraint below,
            // given the partners' minimal needs.
            let mut m = f64::INFINITY;
            for cv in self.sf.cons(agent) {
                let fm = self.f_minus(cv.partner.raw(), d - 1, omega, sc)?;
                m = m.min((1.0 - cv.a_partner * fm) / cv.a_own);
            }
            m
        };
        if val < 0.0 {
            return None;
        }
        sc.fp.insert((v, d), val);
        Some(val)
    }

    /// `f⁻_{u,v,d}(ω)` for an up-type agent `v` (level `4(r−d)−1`).
    fn f_minus(&self, v: u32, d: u32, omega: f64, sc: &mut Scratch) -> Option<f64> {
        if let Some(&val) = sc.fm.get(&(v, d)) {
            return Some(val);
        }
        // (6): the smallest value for which the objective below still
        // reaches ω given the down-agents' maxima.
        let mut sum = 0.0;
        for w in self.sf.others(AgentId::new(v)) {
            sum += self.f_plus(w.raw(), d, omega, sc)?;
        }
        let val = (omega - sum).max(0.0);
        sc.fm.insert((v, d), val);
        Some(val)
    }

    /// Conditions (8) and (9) at `ω` for root `u`.
    pub fn feasible(&self, u: AgentId, omega: f64, sc: &mut Scratch) -> bool {
        sc.clear();
        match self.f_minus(u.raw(), self.r, omega, sc) {
            None => false,
            Some(fm) => fm <= self.sf.cap(u),
        }
    }

    /// A trivial upper bound on `t_u`: every agent of `k(u)` is capped by
    /// its own constraints, so `t_u ≤ Σ_{w∈Vk(u)} cap(w)`.
    pub fn upper_hint(&self, u: AgentId) -> f64 {
        self.sf.cap(u) + self.sf.others(u).map(|w| self.sf.cap(w)).sum::<f64>()
    }

    /// `t_u` by bisection (the paper's suggested implementation).
    pub fn t(&self, u: AgentId, sc: &mut Scratch) -> f64 {
        let hi0 = self.upper_hint(u);
        if hi0 == 0.0 || self.feasible(u, hi0, sc) {
            return hi0;
        }
        let mut lo = 0.0f64;
        let mut hi = hi0;
        let tol = BISECT_REL_TOL * hi0.max(1.0);
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if self.feasible(u, mid, sc) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// `t_u` for every agent, sequentially.
    pub fn all(&self) -> Vec<f64> {
        let mut sc = Scratch::default();
        self.sf
            .instance()
            .agents()
            .map(|u| self.t(u, &mut sc))
            .collect()
    }

    /// `t_u` for every agent using `threads` crossbeam workers; identical
    /// output to [`TreeBound::all`] (each `t_u` is independent).
    pub fn all_parallel(&self, threads: usize) -> Vec<f64> {
        let n = self.sf.n_agents();
        let threads = threads.max(1);
        if threads == 1 || n < 64 {
            return self.all();
        }
        let mut out = vec![0.0f64; n];
        let chunk = n.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (shard, slot) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    let mut sc = Scratch::default();
                    for (off, val) in slot.iter_mut().enumerate() {
                        *val = self.t(AgentId::new((shard * chunk + off) as u32), &mut sc);
                    }
                });
            }
        })
        .expect("t_u workers");
        out
    }

    /// Number of nodes of `A_u` (agents + constraints + objectives) —
    /// the per-node work the local algorithm performs.
    pub fn tree_size(&self, u: AgentId) -> usize {
        // Count via the same traversal as materialize, without building.
        let mut count = 1 + self.sf.cons(u).len() + 1; // u, leaf cons, k(u)
        for w in self.sf.others(u) {
            count += self.count_down(w, self.r);
        }
        count
    }

    fn count_down(&self, v: AgentId, d: u32) -> usize {
        let mut c = 1; // the agent itself
        for cv in self.sf.cons(v) {
            c += 1; // the constraint
            if d > 0 {
                c += self.count_up(cv.partner, d - 1);
            }
        }
        c
    }

    fn count_up(&self, v: AgentId, d: u32) -> usize {
        let mut c = 2; // the agent and its objective
        for w in self.sf.others(v) {
            c += self.count_down(w, d);
        }
        c
    }

    /// Materialises `A_u` as an explicit (tree) max-min LP instance,
    /// returning it together with the map *tree agent → original agent*.
    ///
    /// Leaf constraints (levels −2 and `4r+2`) keep only the one agent
    /// inside the tree — the "relaxed" constraints of Lemma 2. By
    /// Lemma 3, the LP optimum of the returned instance equals `t_u`;
    /// tests verify this against the independent simplex solver.
    pub fn materialize(&self, u: AgentId) -> (Instance, Vec<AgentId>) {
        let mut m = Materializer {
            tb: self,
            b: InstanceBuilder::new(),
            origin: Vec::new(),
        };
        let root = m.add_agent(u);
        for cv in self.sf.cons(u) {
            m.b.add_constraint(&[(root, cv.a_own)])
                .expect("leaf constraint");
        }
        let mut krow = vec![(root, 1.0)];
        for w in self.sf.others(u) {
            krow.push((m.down(w, self.r), 1.0));
        }
        m.b.add_objective(&krow).expect("root objective");
        (m.b.build().expect("materialized tree builds"), m.origin)
    }
}

struct Materializer<'a, 'b> {
    tb: &'b TreeBound<'a>,
    b: InstanceBuilder,
    origin: Vec<AgentId>,
}

impl Materializer<'_, '_> {
    fn add_agent(&mut self, original: AgentId) -> AgentId {
        let id = self.b.add_agent();
        self.origin.push(original);
        id
    }

    /// Expands a down-type agent at level `4(r−d)+1` and its subtree.
    fn down(&mut self, v: AgentId, d: u32) -> AgentId {
        let copy = self.add_agent(v);
        for cv in self.tb.sf.cons(v) {
            if d == 0 {
                self.b
                    .add_constraint(&[(copy, cv.a_own)])
                    .expect("leaf constraint");
            } else {
                let partner = self.up(cv.partner, d - 1);
                self.b
                    .add_constraint(&[(copy, cv.a_own), (partner, cv.a_partner)])
                    .expect("inner constraint");
            }
        }
        copy
    }

    /// Expands an up-type agent at level `4(r−d)−1`, its objective and
    /// the subtree below.
    fn up(&mut self, v: AgentId, d: u32) -> AgentId {
        let copy = self.add_agent(v);
        let mut krow = vec![(copy, 1.0)];
        for w in self.tb.sf.others(v) {
            krow.push((self.down(w, d), 1.0));
        }
        self.b.add_objective(&krow).expect("inner objective");
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};
    use mmlp_instance::CommGraph;

    fn sf(inst: mmlp_instance::Instance) -> SpecialForm {
        SpecialForm::new(inst).expect("special form")
    }

    #[test]
    fn cycle_t_values_match_closed_form() {
        // On the unit-coefficient cycle, A_u is a path and
        // t_u = 1 + 1/(R−1) (hand-computed from the recursions).
        let s = sf(cycle_special(20, 1.0));
        for big_r in 2..=5 {
            let tb = TreeBound::new(&s, big_r);
            let expect = 1.0 + 1.0 / (big_r as f64 - 1.0);
            let mut sc = Scratch::default();
            for u in s.instance().agents().take(4) {
                let t = tb.t(u, &mut sc);
                assert!(
                    (t - expect).abs() < 1e-9,
                    "R={big_r}: t = {t}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn r2_equals_upper_hint() {
        // r = 0 makes conditions (8)/(9) trivial: t_u = Σ_{w∈Vk(u)} cap(w).
        let s = sf(random_special_form(&SpecialFormConfig::default(), 1));
        let tb = TreeBound::new(&s, 2);
        let mut sc = Scratch::default();
        for u in s.instance().agents() {
            assert!((tb.t(u, &mut sc) - tb.upper_hint(u)).abs() < 1e-9);
        }
    }

    #[test]
    fn t_is_monotone_decreasing_in_big_r() {
        // Larger R = deeper A_u = more (and stricter) constraints.
        let s = sf(random_special_form(&SpecialFormConfig::default(), 7));
        let mut prev: Option<Vec<f64>> = None;
        for big_r in 2..=5 {
            let t = TreeBound::new(&s, big_r).all();
            if let Some(p) = &prev {
                for (a, b) in t.iter().zip(p) {
                    assert!(a <= &(b + 1e-9), "t must not increase with R");
                }
            }
            prev = Some(t);
        }
    }

    #[test]
    fn t_upper_bounds_the_global_optimum() {
        // Lemma 2: every feasible solution of G has utility ≤ t_u.
        for seed in 0..4 {
            let s = sf(random_special_form(
                &SpecialFormConfig {
                    n_objectives: 8,
                    extra_constraints: 4,
                    ..SpecialFormConfig::default()
                },
                seed,
            ));
            let opt = mmlp_lp::solve_maxmin(s.instance()).expect("bounded").omega;
            for big_r in [2, 3, 4] {
                let t = TreeBound::new(&s, big_r).all();
                for (u, tu) in t.iter().enumerate() {
                    assert!(
                        *tu >= opt - 1e-7,
                        "seed {seed} R {big_r} agent {u}: t = {tu} < opt = {opt}"
                    );
                }
            }
        }
    }

    #[test]
    fn t_equals_lp_optimum_of_materialized_tree() {
        // Lemma 3: t_u is the optimum of the max-min LP of A_u.
        for seed in 0..3 {
            let s = sf(random_special_form(
                &SpecialFormConfig {
                    n_objectives: 6,
                    extra_constraints: 3,
                    ..SpecialFormConfig::default()
                },
                seed,
            ));
            let tb = TreeBound::new(&s, 3);
            let mut sc = Scratch::default();
            for u in s.instance().agents().step_by(3) {
                let (tree, _) = tb.materialize(u);
                let lp_opt = mmlp_lp::solve_maxmin(&tree).expect("tree LP bounded").omega;
                let t = tb.t(u, &mut sc);
                assert!(
                    (t - lp_opt).abs() < 1e-6,
                    "seed {seed} {u}: t = {t} vs LP = {lp_opt}"
                );
            }
        }
    }

    #[test]
    fn materialized_tree_is_a_tree_with_lemma1_structure() {
        let s = sf(random_special_form(&SpecialFormConfig::default(), 5));
        let tb = TreeBound::new(&s, 3);
        let u = AgentId::new(0);
        let (tree, origin) = tb.materialize(u);
        assert_eq!(origin.len(), tree.n_agents());
        assert_eq!(origin[0], u, "first tree agent is the root");
        let g = CommGraph::new(&tree);
        assert_eq!(g.girth(), None, "A_u is a tree (Lemma 1)");
        let (_, comps) = g.components();
        assert_eq!(comps, 1);
        // Lemma 1: leaves are constraints (degree-1 nodes are constraints).
        for i in tree.constraints() {
            let d = tree.constraint_row(i).len();
            assert!(d == 1 || d == 2);
        }
        for k in tree.objectives() {
            assert!(
                tree.objective_row(k).len() >= 2,
                "objectives keep all agents"
            );
        }
        assert_eq!(tb.tree_size(u), g.n_nodes(), "size counter matches");
    }

    #[test]
    fn feasibility_is_monotone_in_omega() {
        let s = sf(random_special_form(&SpecialFormConfig::default(), 11));
        let tb = TreeBound::new(&s, 4);
        let mut sc = Scratch::default();
        let u = AgentId::new(0);
        let t = tb.t(u, &mut sc);
        for frac in [0.0, 0.25, 0.5, 0.9, 0.999] {
            assert!(tb.feasible(u, frac * t, &mut sc), "below t is feasible");
        }
        assert!(!tb.feasible(u, t * 1.001 + 1e-6, &mut sc), "above t fails");
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = sf(random_special_form(
            &SpecialFormConfig {
                n_objectives: 40,
                ..SpecialFormConfig::default()
            },
            2,
        ));
        let tb = TreeBound::new(&s, 3);
        let seq = tb.all();
        for threads in [2, 4] {
            let par = tb.all_parallel(threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-identical results");
            }
        }
    }

    #[test]
    fn zero_feasible_always() {
        let s = sf(random_special_form(&SpecialFormConfig::default(), 13));
        let tb = TreeBound::new(&s, 3);
        let mut sc = Scratch::default();
        for u in s.instance().agents() {
            assert!(tb.feasible(u, 0.0, &mut sc));
        }
    }
}
