//! §5.3: smoothing `s_v`, the `g±` recursions (12)–(14), and the output
//! rule (18).
//!
//! `s_v = min { t_u : u an agent at distance ≤ 4r+2 from v in G }` makes
//! neighbouring agents agree approximately on the target utility — the
//! paper's fix for the impossibility of assigning globally consistent
//! layers locally. The `g±` recursions are the `f±` recursions with the
//! *smoothed* bound `s_v` in place of the global `ω`:
//!
//! ```text
//! g⁺_{v,0} = min_{i∈Iv} 1/a_iv                                     (12)
//! g⁻_{v,d} = max{0, s_v − Σ_{w∈N(v)} g⁺_{w,d}}                     (13)
//! g⁺_{v,d} = min_{i∈Iv} (1 − a_{i,n(v,i)} g⁻_{n(v,i),d−1}) / a_iv  (14)
//! ```
//!
//! and each agent outputs
//!
//! ```text
//! x_v = (1/2R) Σ_{d=0..r} (g⁺_{v,d} + g⁻_{v,d})                    (18)
//! ```
//!
//! which §6 proves feasible and within factor `2(1−1/ΔK)(1+1/(R−1))` of
//! the optimum on special-form instances.

use crate::special::SpecialForm;
use crate::tree_bound::TreeBound;
use mmlp_instance::{AgentId, CommGraph, Solution};

/// The `g±` tables: `g_plus[d][v]` and `g_minus[d][v]` for `d = 0..=r`.
#[derive(Clone, Debug)]
pub struct GTables {
    /// `g⁺_{v,d}`, indexed `[d][agent]`.
    pub g_plus: Vec<Vec<f64>>,
    /// `g⁻_{v,d}`, indexed `[d][agent]`.
    pub g_minus: Vec<Vec<f64>>,
}

/// Smooths the per-agent bounds: `s_v = min` of `t` over all agents at
/// distance ≤ `4r+2` from `v` in the communication graph.
///
/// Implemented as `4r+2` rounds of neighbour-min relaxation over *all*
/// nodes (constraints and objectives relay with initial value +∞), which
/// delivers values exactly one hop per round — identical to the
/// distributed flooding phase, and equal to the universal-cover ball
/// minimum because every walk in `G` lifts to the unfolding and every
/// unfolding path projects back to a walk.
pub fn smooth(sf: &SpecialForm, t: &[f64], r: usize) -> Vec<f64> {
    assert_eq!(t.len(), sf.n_agents());
    let g = CommGraph::new(sf.instance());
    let n = g.n_nodes();
    let mut cur = vec![f64::INFINITY; n];
    cur[..t.len()].copy_from_slice(t);
    let mut next = vec![0.0f64; n];
    for _ in 0..4 * r + 2 {
        for x in 0..n as u32 {
            let mut m = cur[x as usize];
            for adj in g.neighbors(x) {
                m = m.min(cur[adj.to as usize]);
            }
            next[x as usize] = m;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur.truncate(sf.n_agents());
    cur
}

/// Evaluates the `g±` recursions (12)–(14) level by level.
pub fn g_tables(sf: &SpecialForm, s: &[f64], r: usize) -> GTables {
    let n = sf.n_agents();
    assert_eq!(s.len(), n);
    let mut g_plus: Vec<Vec<f64>> = Vec::with_capacity(r + 1);
    let mut g_minus: Vec<Vec<f64>> = Vec::with_capacity(r + 1);

    for d in 0..=r {
        // (12) / (14)
        let gp: Vec<f64> = if d == 0 {
            (0..n as u32).map(|v| sf.cap(AgentId::new(v))).collect()
        } else {
            let prev_gm = &g_minus[d - 1];
            (0..n as u32)
                .map(|v| {
                    sf.cons(AgentId::new(v))
                        .iter()
                        .map(|cv| (1.0 - cv.a_partner * prev_gm[cv.partner.idx()]) / cv.a_own)
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        };
        // (13): g⁻ at level d uses g⁺ at the same level.
        let gm: Vec<f64> = (0..n as u32)
            .map(|v| {
                let agent = AgentId::new(v);
                let sum: f64 = sf.others(agent).map(|w| gp[w.idx()]).sum();
                (s[v as usize] - sum).max(0.0)
            })
            .collect();
        g_plus.push(gp);
        g_minus.push(gm);
    }

    GTables { g_plus, g_minus }
}

/// The output rule (18): `x_v = (1/2R) Σ_{d=0..r} (g⁺_{v,d} + g⁻_{v,d})`.
pub fn output(sf: &SpecialForm, g: &GTables, big_r: usize) -> Solution {
    let n = sf.n_agents();
    let scale = 1.0 / (2.0 * big_r as f64);
    let mut x = vec![0.0f64; n];
    for d in 0..g.g_plus.len() {
        for (v, slot) in x.iter_mut().enumerate() {
            *slot += g.g_plus[d][v] + g.g_minus[d][v];
        }
    }
    for v in x.iter_mut() {
        *v *= scale;
    }
    Solution::from_vec(x)
}

/// Everything the special-form algorithm produces for one run.
#[derive(Clone, Debug)]
pub struct SpecialRun {
    /// The output assignment (18).
    pub x: Solution,
    /// Per-agent tree bounds `t_u` (§5.2).
    pub t: Vec<f64>,
    /// Smoothed bounds `s_v` (§5.3).
    pub s: Vec<f64>,
    /// The `g±` tables.
    pub g: GTables,
}

/// Runs the complete special-form algorithm (§5) with locality parameter
/// `R ≥ 2`, optionally computing the `t_u` in parallel.
pub fn solve_special(sf: &SpecialForm, big_r: usize, threads: usize) -> SpecialRun {
    let tb = TreeBound::new(sf, big_r);
    let t = tb.all_parallel(threads);
    let r = big_r - 2;
    let s = smooth(sf, &t, r);
    let g = g_tables(sf, &s, r);
    let x = output(sf, &g, big_r);
    SpecialRun { x, t, s, g }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::SpecialForm;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};

    fn sf(seed: u64) -> SpecialForm {
        SpecialForm::new(random_special_form(&SpecialFormConfig::default(), seed)).unwrap()
    }

    #[test]
    fn smoothing_takes_neighborhood_minima() {
        let s = sf(0);
        let n = s.n_agents();
        // Distinct t values: agent j gets j+1; with r = 0 the radius is 2,
        // i.e. agents sharing a constraint or objective with v.
        let t: Vec<f64> = (0..n).map(|j| (j + 1) as f64).collect();
        let sm = smooth(&s, &t, 0);
        for v in s.instance().agents() {
            let mut expect = t[v.idx()];
            for w in s.others(v) {
                expect = expect.min(t[w.idx()]);
            }
            for cv in s.cons(v) {
                expect = expect.min(t[cv.partner.idx()]);
            }
            assert_eq!(sm[v.idx()], expect, "agent {v}");
        }
    }

    #[test]
    fn smoothing_is_bounded_by_own_t() {
        let s = sf(1);
        let run = solve_special(&s, 3, 1);
        for v in 0..s.n_agents() {
            assert!(run.s[v] <= run.t[v] + 1e-12, "s_v ≤ t_v by definition");
            assert!(run.s[v] >= 0.0);
        }
    }

    #[test]
    fn smoothing_radius_grows_with_r() {
        let s = sf(2);
        let n = s.n_agents();
        let t: Vec<f64> = (0..n).map(|j| (j + 1) as f64).collect();
        let s0 = smooth(&s, &t, 0);
        let s1 = smooth(&s, &t, 1);
        for v in 0..n {
            assert!(s1[v] <= s0[v] + 1e-15, "larger radius, smaller min");
        }
    }

    #[test]
    fn lemma5_bounds_hold() {
        // g⁺_{v,r} ≥ 0 and g⁻_{v,r} ≤ cap(v).
        for seed in 0..5 {
            let s = sf(seed);
            for big_r in [2, 3, 4] {
                let run = solve_special(&s, big_r, 1);
                let r = big_r - 2;
                for v in 0..s.n_agents() {
                    assert!(run.g.g_plus[r][v] >= -1e-12, "Lemma 5: g⁺ ≥ 0");
                    assert!(
                        run.g.g_minus[r][v] <= s.cap(AgentId::new(v as u32)) + 1e-9,
                        "Lemma 5: g⁻ ≤ cap"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma6_monotonicity_holds() {
        // g⁻_{v,d−1} ≤ g⁻_{v,d} and g⁺_{v,d} ≤ g⁺_{v,d−1}.
        let s = sf(3);
        let run = solve_special(&s, 5, 1);
        let r = 3;
        for d in 1..=r {
            for v in 0..s.n_agents() {
                assert!(
                    run.g.g_minus[d - 1][v] <= run.g.g_minus[d][v] + 1e-9,
                    "Lemma 6: g⁻ non-decreasing in d"
                );
                assert!(
                    run.g.g_plus[d][v] <= run.g.g_plus[d - 1][v] + 1e-9,
                    "Lemma 6: g⁺ non-increasing in d"
                );
            }
        }
    }

    #[test]
    fn lemma7_nonnegativity_holds() {
        let s = sf(4);
        let run = solve_special(&s, 4, 1);
        for d in 0..run.g.g_plus.len() {
            for v in 0..s.n_agents() {
                assert!(run.g.g_plus[d][v] >= -1e-12, "Lemma 7: g⁺_{{v,d}} ≥ 0");
                assert!(run.g.g_minus[d][v] >= 0.0, "g⁻ ≥ 0 by (13)");
            }
        }
    }

    #[test]
    fn output_is_feasible() {
        // Lemma 11.
        for seed in 0..8 {
            let s = sf(seed);
            for big_r in [2, 3, 4] {
                let run = solve_special(&s, big_r, 1);
                let rep = run.x.feasibility(s.instance());
                assert!(
                    rep.is_feasible(1e-9),
                    "seed {seed} R {big_r}: violation {}",
                    rep.max_constraint_violation
                );
            }
        }
    }

    #[test]
    fn output_meets_lemma12_utility_bound() {
        // ω_k(x) ≥ (1/2)(1 − 1/R)·|Vk|/(|Vk|−1)·min_{v∈Vk} s_v.
        for seed in 0..5 {
            let s = sf(seed);
            for big_r in [2, 3, 5] {
                let run = solve_special(&s, big_r, 1);
                for k in s.instance().objectives() {
                    let row = s.instance().objective_row(k);
                    let vk = row.len() as f64;
                    let min_s = row
                        .iter()
                        .map(|e| run.s[e.agent.idx()])
                        .fold(f64::INFINITY, f64::min);
                    let bound = 0.5 * (1.0 - 1.0 / big_r as f64) * (vk / (vk - 1.0)) * min_s;
                    let got = run.x.objective_value(s.instance(), k);
                    assert!(
                        got >= bound - 1e-9,
                        "seed {seed} R {big_r} {k}: ω_k = {got} < bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_output_matches_hand_computation() {
        // Unit cycle: t_u = 1 + 1/(R−1) everywhere, so s ≡ t; by symmetry
        // the g recursion gives a uniform solution; feasibility forces
        // x_v ≤ 1/2 and Lemma 12 with |Vk| = 2, min s = R/(R−1) gives
        // ω_k(x) ≥ (1−1/R)·R/(R−1) = 1, i.e. x_v = 1/2 exactly: the local
        // algorithm is optimal on the cycle.
        let s = SpecialForm::new(cycle_special(12, 1.0)).unwrap();
        for big_r in [3, 4, 6] {
            let run = solve_special(&s, big_r, 1);
            for v in 0..s.n_agents() {
                assert!(
                    (run.x.value(AgentId::new(v as u32)) - 0.5).abs() < 1e-9,
                    "R={big_r}: x = {}",
                    run.x.value(AgentId::new(v as u32))
                );
            }
            assert!((run.x.utility(s.instance()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn utility_improves_or_holds_with_r_on_cycle() {
        let s = SpecialForm::new(cycle_special(16, 1.0)).unwrap();
        let mut last = 0.0;
        for big_r in 2..=6 {
            let run = solve_special(&s, big_r, 1);
            let u = run.x.utility(s.instance());
            assert!(
                u >= last - 1e-9,
                "R={big_r}: utility regressed {last} → {u}"
            );
            last = u;
        }
    }
}

/// Which ingredient of the §5.3 construction to disable — used by the
/// ablation experiment (T9) to show every ingredient is load-bearing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ablation {
    /// The full algorithm (baseline).
    None,
    /// Skip smoothing: run the `g±` recursions with each agent's own
    /// bound `t_v` instead of `s_v`. Breaks Lemma 4 (the `g` values are
    /// no longer dominated by any single tree's `f` values), and with it
    /// Lemma 5 — feasibility is lost on heterogeneous instances.
    NoSmoothing,
    /// Output only the up-role half `x_v = (1/R) Σ_d g⁻_{v,d}`. This is
    /// the solution `y` of (20) for one fixed global role assignment —
    /// feasible only when the roles happen to be globally consistent,
    /// which no local algorithm can arrange (§2); utility collapses on
    /// objectives whose agents all chose "up".
    UpOnly,
    /// Output only the down-role half `x_v = (1/R) Σ_d g⁺_{v,d}`.
    /// Symmetric failure: constraints whose two agents both chose
    /// "down" get overloaded — feasibility is lost.
    DownOnly,
    /// Skip the shifting average over `d`: output the deepest level only,
    /// `x_v = (g⁺_{v,r} + g⁻_{v,r}) / 2`. Without the `1/R` averaging
    /// there is no passive layer to absorb boundary effects (§6.1) and
    /// constraints can be violated by up to a factor R.
    NoShifting,
}

/// Runs the special-form algorithm with one ingredient disabled.
///
/// Returns the (possibly infeasible!) assignment — callers measure the
/// damage. With [`Ablation::None`] this is exactly [`solve_special`].
pub fn solve_special_ablated(sf: &SpecialForm, big_r: usize, ablation: Ablation) -> SpecialRun {
    let tb = TreeBound::new(sf, big_r);
    let t = tb.all();
    let r = big_r - 2;
    let s = match ablation {
        Ablation::NoSmoothing => t.clone(),
        _ => smooth(sf, &t, r),
    };
    let g = g_tables(sf, &s, r);
    let n = sf.n_agents();
    let x = match ablation {
        Ablation::None | Ablation::NoSmoothing => output(sf, &g, big_r),
        Ablation::UpOnly => Solution::from_vec(
            (0..n)
                .map(|v| (0..=r).map(|d| g.g_minus[d][v]).sum::<f64>() / big_r as f64)
                .collect(),
        ),
        Ablation::DownOnly => Solution::from_vec(
            (0..n)
                .map(|v| (0..=r).map(|d| g.g_plus[d][v]).sum::<f64>() / big_r as f64)
                .collect(),
        ),
        Ablation::NoShifting => Solution::from_vec(
            (0..n)
                .map(|v| 0.5 * (g.g_plus[r][v] + g.g_minus[r][v]))
                .collect(),
        ),
    };
    SpecialRun { x, t, s, g }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::special::SpecialForm;
    use mmlp_gen::special::{random_special_form, SpecialFormConfig};

    fn sf(seed: u64) -> SpecialForm {
        SpecialForm::new(random_special_form(
            &SpecialFormConfig {
                n_objectives: 24,
                delta_k: 3,
                extra_constraints: 14,
                coef_range: (0.25, 4.0),
            },
            seed,
        ))
        .unwrap()
    }

    #[test]
    fn none_matches_solve_special() {
        let s = sf(0);
        let full = solve_special(&s, 3, 1);
        let ablated = solve_special_ablated(&s, 3, Ablation::None);
        for v in 0..s.n_agents() {
            assert_eq!(
                full.x.as_slice()[v].to_bits(),
                ablated.x.as_slice()[v].to_bits()
            );
        }
    }

    #[test]
    fn removing_smoothing_breaks_feasibility_somewhere() {
        // Not on every instance — but across a handful of seeds the
        // unsmoothed bounds must overshoot somewhere (that is exactly
        // why §5.3 introduces s_v).
        let mut worst = 0.0f64;
        for seed in 0..8 {
            let s = sf(seed);
            let run = solve_special_ablated(&s, 3, Ablation::NoSmoothing);
            worst = worst.max(run.x.feasibility(s.instance()).max_constraint_violation);
        }
        assert!(
            worst > 1e-6,
            "no-smoothing stayed feasible everywhere (violation {worst:.2e}) — \
             the ablation should break"
        );
    }

    #[test]
    fn single_role_outputs_lose_utility_or_feasibility() {
        let mut up_hurts = false;
        let mut down_breaks = 0.0f64;
        for seed in 0..8 {
            let s = sf(seed);
            let full = solve_special(&s, 3, 1);
            let up = solve_special_ablated(&s, 3, Ablation::UpOnly);
            let down = solve_special_ablated(&s, 3, Ablation::DownOnly);
            // Up-only keeps feasibility (g⁻ ≤ the feasible f⁻ pattern)
            // but can starve objectives.
            if up.x.utility(s.instance()) < 0.5 * full.x.utility(s.instance()) {
                up_hurts = true;
            }
            down_breaks =
                down_breaks.max(down.x.feasibility(s.instance()).max_constraint_violation);
        }
        assert!(up_hurts, "up-only should starve some objective");
        assert!(
            down_breaks > 1e-6,
            "down-only should overload some constraint"
        );
    }

    #[test]
    fn no_shifting_breaks_feasibility_somewhere() {
        let mut worst = 0.0f64;
        for seed in 0..8 {
            let s = sf(seed);
            let run = solve_special_ablated(&s, 4, Ablation::NoShifting);
            worst = worst.max(run.x.feasibility(s.instance()).max_constraint_violation);
        }
        assert!(worst > 1e-6, "deepest-level-only output should overload");
    }
}
