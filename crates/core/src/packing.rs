//! Mixed packing/covering LPs via max-min LPs — the application noted in
//! §1 of the paper (citing Young, FOCS 2001), including the special case
//! of nonnegative systems of linear equations.
//!
//! A **mixed packing/covering feasibility problem** asks for `x ≥ 0` with
//!
//! ```text
//! P x ≤ p      (packing rows, P ≥ 0, p > 0)
//! C x ≥ c      (covering rows, C ≥ 0, c > 0)
//! ```
//!
//! Normalising rows by their right-hand sides turns the question into
//! whether the max-min LP `max min_k (C'x)_k  s.t.  P'x ≤ 1` has optimum
//! `ω* ≥ 1`. Running the local algorithm yields one of three *certified*
//! verdicts:
//!
//! * its output `x` already covers every row (`min_k (C'x)_k ≥ 1`):
//!   **feasible**, with `x` (rescaled back) as an explicit witness;
//! * its own optimum certificate `min_v s_v` (an upper bound on `ω*`,
//!   Lemmas 2–3 plus the forward maps of §4) is below 1: **infeasible**;
//! * otherwise the instance lies in the approximation gap and the
//!   algorithm returns the best witness it found (**unresolved** — a
//!   larger `R` narrows the band by Theorem 1).

use crate::solver::LocalSolver;
use mmlp_instance::{AgentId, Instance, InstanceBuilder};

/// A mixed packing/covering feasibility problem.
#[derive(Clone, Debug, Default)]
pub struct MixedProblem {
    n_vars: usize,
    packing: Vec<(Vec<(usize, f64)>, f64)>,
    covering: Vec<(Vec<(usize, f64)>, f64)>,
}

impl MixedProblem {
    /// Creates a problem on `n_vars` nonnegative variables.
    pub fn new(n_vars: usize) -> Self {
        MixedProblem {
            n_vars,
            ..Default::default()
        }
    }

    /// Adds a packing row `Σ a_j x_j ≤ rhs` (coefficients ≥ 0, rhs > 0).
    pub fn add_packing(&mut self, coefs: Vec<(usize, f64)>, rhs: f64) {
        assert!(rhs > 0.0, "packing rhs must be positive");
        assert!(coefs.iter().all(|&(j, a)| j < self.n_vars && a >= 0.0));
        self.packing.push((coefs, rhs));
    }

    /// Adds a covering row `Σ c_j x_j ≥ rhs` (coefficients ≥ 0, rhs > 0).
    pub fn add_covering(&mut self, coefs: Vec<(usize, f64)>, rhs: f64) {
        assert!(rhs > 0.0, "covering rhs must be positive");
        assert!(coefs.iter().all(|&(j, a)| j < self.n_vars && a >= 0.0));
        self.covering.push((coefs, rhs));
    }

    /// Largest violation of any row by `x` (0 when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (coefs, rhs) in &self.packing {
            let lhs: f64 = coefs.iter().map(|&(j, a)| a * x[j]).sum();
            worst = worst.max(lhs - rhs);
        }
        for (coefs, rhs) in &self.covering {
            let lhs: f64 = coefs.iter().map(|&(j, a)| a * x[j]).sum();
            worst = worst.max(rhs - lhs);
        }
        for &v in x {
            worst = worst.max(-v);
        }
        worst
    }

    /// The minimum normalised coverage `min_k (Cx)_k / c_k` of `x`
    /// (`≥ 1` iff all covering rows hold).
    pub fn min_coverage(&self, x: &[f64]) -> f64 {
        self.covering
            .iter()
            .map(|(coefs, rhs)| coefs.iter().map(|&(j, a)| a * x[j]).sum::<f64>() / rhs)
            .fold(f64::INFINITY, f64::min)
    }

    /// Builds the normalised max-min LP instance plus the variable map
    /// (variables in no covering row are non-contributing and fixed to
    /// 0; variables in no packing row get the harmless cap described in
    /// the module docs so the instance stays bounded).
    fn to_instance(&self) -> (Instance, Vec<Option<AgentId>>) {
        let mut in_cover = vec![false; self.n_vars];
        for (coefs, _) in &self.covering {
            for &(j, a) in coefs {
                if a > 0.0 {
                    in_cover[j] = true;
                }
            }
        }
        let mut b = InstanceBuilder::new();
        let mut agent_of: Vec<Option<AgentId>> = vec![None; self.n_vars];
        for j in 0..self.n_vars {
            if in_cover[j] {
                agent_of[j] = Some(b.add_agent());
            }
        }
        let mut in_pack = vec![false; self.n_vars];
        for (coefs, rhs) in &self.packing {
            let row: Vec<(AgentId, f64)> = coefs
                .iter()
                .filter(|&&(j, a)| a > 0.0 && agent_of[j].is_some())
                .map(|&(j, a)| {
                    in_pack[j] = true;
                    (agent_of[j].unwrap(), a / rhs)
                })
                .collect();
            if !row.is_empty() {
                b.add_constraint(&row).expect("normalised packing row");
            }
        }
        // Cap packing-free variables so the max-min LP stays bounded:
        // x_j ≤ M_j with M_j large enough to single-handedly satisfy
        // every covering row touching j.
        for j in 0..self.n_vars {
            if let Some(v) = agent_of[j] {
                if !in_pack[j] {
                    let m = self
                        .covering
                        .iter()
                        .filter_map(|(coefs, rhs)| {
                            coefs
                                .iter()
                                .find(|&&(jj, a)| jj == j && a > 0.0)
                                .map(|&(_, a)| rhs / a)
                        })
                        .fold(0.0f64, f64::max);
                    b.add_constraint(&[(v, 1.0 / (2.0 * m.max(1.0)))])
                        .expect("cap row");
                }
            }
        }
        for (coefs, rhs) in &self.covering {
            let row: Vec<(AgentId, f64)> = coefs
                .iter()
                .filter(|&&(_, a)| a > 0.0)
                .map(|&(j, a)| (agent_of[j].expect("covered variable kept"), a / rhs))
                .collect();
            b.add_objective(&row).expect("normalised covering row");
        }
        (b.build().expect("mixed instance builds"), agent_of)
    }
}

/// Certified verdicts of [`solve_mixed`].
#[derive(Clone, Debug)]
pub enum MixedVerdict {
    /// `x` satisfies every row — an explicit feasibility witness.
    Feasible {
        /// The witness.
        x: Vec<f64>,
    },
    /// The algorithm's optimum certificate shows `ω* < 1`: no feasible
    /// point exists.
    Infeasible {
        /// The certified upper bound on the normalised covering optimum.
        omega_upper: f64,
    },
    /// Inside the approximation gap: `x` packs feasibly and covers every
    /// row to at least `coverage < 1`, while `ω*` might still reach 1.
    Unresolved {
        /// Best packing-feasible point found.
        x: Vec<f64>,
        /// Its minimum normalised coverage.
        coverage: f64,
        /// The certified upper bound on `ω*`.
        omega_upper: f64,
    },
}

/// Decides (approximately) a mixed packing/covering problem with the
/// local algorithm at locality `R`.
pub fn solve_mixed(problem: &MixedProblem, big_r: usize) -> MixedVerdict {
    assert!(
        !problem.covering.is_empty(),
        "a mixed problem needs at least one covering row"
    );
    let (inst, agent_of) = problem.to_instance();
    let out = LocalSolver::new(big_r).solve(&inst);
    let mut x = vec![0.0f64; problem.n_vars];
    for (j, a) in agent_of.iter().enumerate() {
        if let Some(v) = a {
            x[j] = out.solution.value(*v);
        }
    }
    let coverage = problem.min_coverage(&x);
    if coverage >= 1.0 - 1e-9 {
        return MixedVerdict::Feasible { x };
    }
    let omega_upper = out.optimum_upper_bound();
    // The t_u bisection returns certified-feasible *lower* ends, so the
    // certificate can sit a hair below a true optimum of exactly 1;
    // only certify infeasibility with a safety margin.
    if omega_upper < 1.0 - 1e-9 {
        MixedVerdict::Infeasible { omega_upper }
    } else {
        MixedVerdict::Unresolved {
            x,
            coverage,
            omega_upper,
        }
    }
}

/// Approximately solves the nonnegative linear system `A x = b`
/// (`A ≥ 0`, `b > 0`, `x ≥ 0`) — the paper's "particular special case" —
/// by encoding each equation as a packing and a covering row.
///
/// Returns the witness and its maximum relative equation error
/// `max_i |(Ax)_i − b_i| / b_i`, or `None` when the system is certified
/// inconsistent.
pub fn solve_nonneg_system(
    rows: &[Vec<(usize, f64)>],
    b: &[f64],
    n_vars: usize,
    big_r: usize,
) -> Option<(Vec<f64>, f64)> {
    assert_eq!(rows.len(), b.len());
    let mut p = MixedProblem::new(n_vars);
    for (row, &rhs) in rows.iter().zip(b) {
        p.add_packing(row.clone(), rhs);
        p.add_covering(row.clone(), rhs);
    }
    let verdict = solve_mixed(&p, big_r);
    let x = match verdict {
        MixedVerdict::Feasible { x } => x,
        MixedVerdict::Unresolved { x, .. } => x,
        MixedVerdict::Infeasible { .. } => return None,
    };
    let mut err = 0.0f64;
    for (row, &rhs) in rows.iter().zip(b) {
        let lhs: f64 = row.iter().map(|&(j, a)| a * x[j]).sum();
        err = err.max((lhs - rhs).abs() / rhs);
    }
    Some((x, err))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x0 + x1 ≤ 2, x0 + x1 ≥ 1, x1 + x2 ≥ 1 — feasible (e.g. all 1/2…).
    fn feasible_problem() -> MixedProblem {
        let mut p = MixedProblem::new(3);
        p.add_packing(vec![(0, 1.0), (1, 1.0)], 2.0);
        p.add_packing(vec![(1, 1.0), (2, 1.0)], 2.0);
        p.add_covering(vec![(0, 1.0), (1, 1.0)], 1.0);
        p.add_covering(vec![(1, 1.0), (2, 1.0)], 1.0);
        p
    }

    #[test]
    fn feasible_system_gets_a_witness() {
        let p = feasible_problem();
        // ω* = 2 here, far above 1: even R = 2 resolves it.
        match solve_mixed(&p, 2) {
            MixedVerdict::Feasible { x } => {
                assert!(p.max_violation(&x) < 1e-7, "witness must be exact");
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_system_is_certified() {
        // x0 ≤ 1/4 but x0 ≥ 1: ω* = 1/4 < 1; the certificate
        // min_v s_v ≤ … catches it at small R already.
        let mut p = MixedProblem::new(1);
        p.add_packing(vec![(0, 4.0)], 1.0);
        p.add_covering(vec![(0, 1.0)], 1.0);
        match solve_mixed(&p, 3) {
            MixedVerdict::Infeasible { omega_upper } => {
                assert!(omega_upper < 1.0);
                assert!(omega_upper >= 0.25 - 1e-9, "bound stays above ω*");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn verdict_witnesses_respect_packing_always() {
        let p = feasible_problem();
        for big_r in [2, 3, 4] {
            let x = match solve_mixed(&p, big_r) {
                MixedVerdict::Feasible { x } => x,
                MixedVerdict::Unresolved { x, .. } => x,
                MixedVerdict::Infeasible { .. } => panic!("problem is feasible"),
            };
            for (coefs, rhs) in &p.packing {
                let lhs: f64 = coefs.iter().map(|&(j, a)| a * x[j]).sum();
                assert!(lhs <= rhs + 1e-7, "packing rows always hold");
            }
        }
    }

    #[test]
    fn variable_without_covering_row_is_fixed_to_zero() {
        let mut p = MixedProblem::new(2);
        p.add_packing(vec![(0, 1.0), (1, 1.0)], 1.0);
        p.add_covering(vec![(0, 2.0)], 1.0);
        match solve_mixed(&p, 3) {
            MixedVerdict::Feasible { x } => assert_eq!(x[1], 0.0),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn variable_without_packing_row_is_capped_not_unbounded() {
        let mut p = MixedProblem::new(2);
        p.add_packing(vec![(0, 1.0)], 1.0);
        p.add_covering(vec![(0, 1.0), (1, 1.0)], 4.0);
        // x1 is packing-free: it can satisfy the covering row alone.
        match solve_mixed(&p, 2) {
            MixedVerdict::Feasible { x } => {
                assert!(p.max_violation(&x) < 1e-7);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn nonneg_linear_system_solves_consistent_systems() {
        // x0 + x1 = 2, x1 = 1 → x = (1, 1).
        let rows = vec![vec![(0, 1.0), (1, 1.0)], vec![(1, 1.0)]];
        let (x, err) = solve_nonneg_system(&rows, &[2.0, 1.0], 2, 4).expect("consistent");
        assert!(err <= 1.0, "relative error within the approximation band");
        // Equations are ≤-feasible exactly.
        assert!(x[0] + x[1] <= 2.0 + 1e-7);
        assert!(x[1] <= 1.0 + 1e-7);
    }

    #[test]
    fn nonneg_linear_system_rejects_inconsistent_systems() {
        // x0 = 1 and x0 = 4 cannot both hold: the packing side forces
        // x0 ≤ 1, the covering side x0 ≥ 4, so ω* = 1/4 and the local
        // certificate falls below 1.
        let rows = vec![vec![(0, 1.0)], vec![(0, 1.0)]];
        assert!(solve_nonneg_system(&rows, &[1.0, 4.0], 1, 3).is_none());
    }

    #[test]
    fn min_coverage_and_violation_helpers() {
        let p = feasible_problem();
        let x = vec![0.5, 0.5, 0.5];
        assert!((p.min_coverage(&x) - 1.0).abs() < 1e-12);
        assert_eq!(p.max_violation(&x), 0.0);
        let bad = vec![3.0, 0.0, 0.0];
        assert!(p.max_violation(&bad) > 0.0);
    }
}
