//! The end-to-end local solver: §4 transformations → §5 algorithm →
//! back-map, with the Theorem 1 guarantee.
//!
//! ```
//! use mmlp_core::solver::LocalSolver;
//! use mmlp_gen::random::{random_general, RandomConfig};
//!
//! let inst = random_general(&RandomConfig::default(), 0);
//! let out = LocalSolver::new(3).solve(&inst);
//! assert!(out.solution.is_feasible(&inst, 1e-9));
//! ```

use crate::distributed;
use crate::ratio;
use crate::smoothing::{self, SpecialRun};
use crate::special::SpecialForm;
use crate::transform::{to_special_form, StageInfo};
use mmlp_instance::{DegreeStats, Instance, Solution};
use mmlp_net::RunStats;

/// The paper's local algorithm, configured by the locality parameter
/// `R ≥ 2` (local horizon Θ(R); guarantee `ΔI(1−1/ΔK)(1+1/(R−1))`).
#[derive(Clone, Copy, Debug)]
pub struct LocalSolver {
    big_r: usize,
    threads: usize,
    via_network: bool,
}

/// Everything one solve produces.
#[derive(Clone, Debug)]
pub struct LocalSolverOutput {
    /// The feasible assignment for the *original* instance.
    pub solution: Solution,
    /// The algorithm's own a-priori utility certificate:
    /// `min_v s_v` is an upper bound on the optimum of the transformed
    /// instance (Lemmas 2–3), so
    /// `opt ≤ ΔI/2 · min_v s_v` after the §4.3 accounting.
    pub special_run: SpecialRun,
    /// Stage-by-stage size trace of the §4 pipeline.
    pub trace: Vec<StageInfo>,
    /// The locality parameter used.
    pub big_r: usize,
    /// Protocol accounting when the solve ran over the flat network
    /// path ([`LocalSolver::via_network`]): rounds, logical message
    /// bytes, and the view arena's dedup counters (`interned_nodes`,
    /// `arena_bytes`, `peak_arena_bytes`, [`RunStats::dedup_ratio`]).
    /// `None` for the centralized path.
    pub net_stats: Option<RunStats>,
    /// Per-phase wall times and memo/chunk telemetry of the flat solve
    /// ([`distributed::FlatSolveTrace`]). `Some` only on the network
    /// path — the solve is then run through the traced entry point,
    /// which is bit-identical to the untraced one.
    pub flat_trace: Option<distributed::FlatSolveTrace>,
}

impl LocalSolverOutput {
    /// An a-posteriori upper bound on the **original** optimum, computed
    /// from the algorithm's own `s` values.
    ///
    /// Validity: every `t_u` — hence every `s_v` — upper-bounds the
    /// optimum of the *special-form* instance (Lemmas 2–3), and the
    /// special-form optimum upper-bounds the original one because the
    /// original optimum survives every forward transformation with its
    /// utility intact (§4.2/4.4/4.5/4.6 preserve optima; §4.3 keeps the
    /// original solution feasible and can only raise the optimum). So
    /// `opt(original) ≤ opt(special) ≤ min_v s_v`. The certificate is
    /// exercised by the packing/covering verdicts and by experiment T1.
    pub fn optimum_upper_bound(&self) -> f64 {
        self.special_run
            .s
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

impl LocalSolver {
    /// Creates a solver with locality parameter `R ≥ 2`.
    pub fn new(big_r: usize) -> Self {
        assert!(big_r >= 2, "the paper requires R ≥ 2");
        LocalSolver {
            big_r,
            threads: 1,
            via_network: false,
        }
    }

    /// Chooses the smallest `R` achieving ratio `threshold + ε` for the
    /// instance's degree parameters (the constructive side of Theorem 1).
    pub fn for_epsilon(inst: &Instance, epsilon: f64) -> Self {
        let s = DegreeStats::of(inst);
        let (di, dk) = (s.delta_i.max(2), s.delta_k.max(2));
        Self::new(ratio::r_for_epsilon(di, dk, epsilon))
    }

    /// Sets the worker-thread **upper bound** for the per-agent `t_u`
    /// batch (bit-identical results at every count; see
    /// `tree_bound::all_parallel` for the centralized path). On the flat
    /// network path the batch additionally caps workers at the host's
    /// available parallelism and stays scalar below
    /// [`distributed::FLAT_T_PARALLEL_MIN_WORK`] units of subtree work,
    /// so asking for more threads than the work supports never costs.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs the §5 phase over the **flat network path**
    /// ([`distributed::solve_special_flat`]): the faithful distributed
    /// semantics on the hash-consed view arena, with protocol round /
    /// byte accounting and view-dedup counters attached to the output
    /// (`net_stats`). Outputs are bit-identical to the centralized path
    /// — only the accounting is extra.
    pub fn via_network(mut self, on: bool) -> Self {
        self.via_network = on;
        self
    }

    /// The locality parameter `R`.
    pub fn big_r(&self) -> usize {
        self.big_r
    }

    /// The proved approximation guarantee for an instance with the given
    /// degree bounds.
    pub fn guarantee(&self, delta_i: usize, delta_k: usize) -> f64 {
        ratio::guarantee(delta_i.max(2), delta_k.max(2), self.big_r)
    }

    /// Solves a general max-min LP: transform (§4), run the special-form
    /// algorithm (§5) — centralized, or over the flat network path when
    /// [`LocalSolver::via_network`] is set — map back.
    pub fn solve(&self, inst: &Instance) -> LocalSolverOutput {
        let transformed = to_special_form(inst);
        let sf = SpecialForm::new(transformed.instance.clone())
            .expect("§4 pipeline produces special form");
        let (run, net_stats, flat_trace) = if self.via_network {
            let (run, stats, trace) =
                distributed::solve_special_flat_traced(&sf, self.big_r, self.threads);
            (run, Some(stats), Some(trace))
        } else {
            (
                smoothing::solve_special(&sf, self.big_r, self.threads),
                None,
                None,
            )
        };
        let solution = transformed.map_back(&run.x);
        LocalSolverOutput {
            solution,
            special_run: run,
            trace: transformed.trace,
            big_r: self.big_r,
            net_stats,
            flat_trace,
        }
    }

    /// Solves an instance already in special form, skipping the pipeline
    /// (used by benchmarks and by the distributed comparison).
    pub fn solve_special(&self, sf: &SpecialForm) -> SpecialRun {
        smoothing::solve_special(sf, self.big_r, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::random::{random_general, RandomConfig};
    use mmlp_gen::special::cycle_special;
    use mmlp_lp::solve_maxmin;

    fn cfg() -> RandomConfig {
        RandomConfig {
            n_agents: 12,
            n_constraints: 9,
            n_objectives: 7,
            delta_i: 3,
            delta_k: 3,
            coef_range: (0.5, 2.0),
        }
    }

    #[test]
    fn output_is_feasible_on_general_instances() {
        for seed in 0..8 {
            let inst = random_general(&cfg(), seed);
            for big_r in [2, 3, 4] {
                let out = LocalSolver::new(big_r).solve(&inst);
                assert!(
                    out.solution.is_feasible(&inst, 1e-7),
                    "seed {seed} R {big_r}"
                );
                assert!(out.solution.utility(&inst) > 0.0, "non-trivial output");
            }
        }
    }

    #[test]
    fn theorem1_ratio_holds_empirically() {
        for seed in 0..8 {
            let inst = random_general(&cfg(), seed);
            let opt = solve_maxmin(&inst).expect("bounded").omega;
            let stats = DegreeStats::of(&inst);
            for big_r in [2, 3, 4] {
                let solver = LocalSolver::new(big_r);
                let out = solver.solve(&inst);
                let got = out.solution.utility(&inst);
                let bound = solver.guarantee(stats.delta_i, stats.delta_k);
                assert!(
                    got * bound >= opt - 1e-7,
                    "seed {seed} R {big_r}: ratio {} exceeds guarantee {bound}",
                    opt / got
                );
            }
        }
    }

    #[test]
    fn optimum_upper_bound_certificate_is_valid() {
        for seed in 0..5 {
            let inst = random_general(&cfg(), seed);
            let opt = solve_maxmin(&inst).expect("bounded").omega;
            let out = LocalSolver::new(3).solve(&inst);
            assert!(
                out.optimum_upper_bound() >= opt - 1e-7,
                "seed {seed}: certificate {} < optimum {opt}",
                out.optimum_upper_bound()
            );
        }
    }

    #[test]
    fn for_epsilon_matches_guarantee() {
        let inst = random_general(&cfg(), 0);
        let s = DegreeStats::of(&inst);
        let solver = LocalSolver::for_epsilon(&inst, 0.25);
        assert!(
            solver.guarantee(s.delta_i, s.delta_k)
                <= ratio::threshold(s.delta_i, s.delta_k) + 0.25 + 1e-12
        );
    }

    #[test]
    fn solver_is_optimal_on_cycles() {
        let inst = cycle_special(10, 1.0);
        let out = LocalSolver::new(4).solve(&inst);
        assert!((out.solution.utility(&inst) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threads_do_not_change_output() {
        let inst = random_general(&cfg(), 5);
        let a = LocalSolver::new(3).solve(&inst);
        let b = LocalSolver::new(3).with_threads(4).solve(&inst);
        for v in inst.agents() {
            assert_eq!(a.solution.value(v).to_bits(), b.solution.value(v).to_bits());
        }
    }

    #[test]
    fn network_path_is_bit_identical_and_accounts() {
        let inst = random_general(&cfg(), 7);
        for big_r in [2, 3] {
            let central = LocalSolver::new(big_r).solve(&inst);
            let net = LocalSolver::new(big_r).via_network(true).solve(&inst);
            for v in inst.agents() {
                assert_eq!(
                    central.solution.value(v).to_bits(),
                    net.solution.value(v).to_bits(),
                    "R {big_r} agent {v}"
                );
            }
            assert_eq!(
                central.optimum_upper_bound().to_bits(),
                net.optimum_upper_bound().to_bits()
            );
            assert!(central.net_stats.is_none());
            assert!(central.flat_trace.is_none());
            let stats = net.net_stats.expect("network path accounts");
            assert!(stats.messages > 0 && stats.interned_nodes > 0);
            assert!(stats.dedup_ratio() > 0.0);
            let trace = net.flat_trace.expect("network path is traced");
            assert!(trace.total_ns > 0);
            let phase_sum = trace.gather_ns + trace.t_eval_ns + trace.flood_ns + trace.g_ns;
            assert!(phase_sum <= trace.total_ns);
        }
    }

    #[test]
    fn quality_improves_with_r_on_average() {
        // Not guaranteed per instance, but the guarantee tightens; check
        // the mean utility over seeds does not degrade from R=2 to R=5.
        let mut mean2 = 0.0;
        let mut mean5 = 0.0;
        let n = 6;
        for seed in 0..n {
            let inst = random_general(&cfg(), seed as u64);
            mean2 += LocalSolver::new(2).solve(&inst).solution.utility(&inst);
            mean5 += LocalSolver::new(5).solve(&inst).solution.utility(&inst);
        }
        assert!(
            mean5 >= mean2 * 0.99,
            "mean utility should not collapse with deeper horizons: {mean2} vs {mean5}"
        );
    }
}
