//! The *special form* of §5: a validated wrapper exposing the paper's
//! accessors.
//!
//! After the §4 transformations, the instance satisfies
//!
//! * `|Kv| = 1` — each agent `v` has a unique objective `k(v)`,
//! * `c_kv = 1` — objective coefficients are normalised away,
//! * `|Vi| = 2` — each constraint couples exactly two agents, so
//!   `n(v, i)` (the *partner* of `v` at constraint `i`) is well defined,
//! * `|Vk| ≥ 2` — so `N(v) = V_{k(v)} \ {v}` is nonempty,
//! * `|Iv| ≥ 1` — so the cap `min_{i∈Iv} 1/a_iv` is finite.
//!
//! [`SpecialForm`] verifies all of this once and pre-computes the
//! partner tables that the `f±`/`g±` recursions hit in their inner loops.

use mmlp_instance::{AgentId, ConstraintId, Instance, ObjectiveId};

/// One constraint incident to an agent, with everything the recursions
/// need: own coefficient, partner agent, partner coefficient.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConsView {
    /// The constraint id.
    pub cons: ConstraintId,
    /// `a_iv` — this agent's coefficient.
    pub a_own: f64,
    /// `n(v, i)` — the unique other agent of the constraint.
    pub partner: AgentId,
    /// `a_{i, n(v,i)}` — the partner's coefficient.
    pub a_partner: f64,
}

/// Why an instance is not in special form.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecialFormError {
    /// A constraint has `|Vi| ≠ 2`.
    ConstraintDegree {
        /// Offending constraint.
        cons: ConstraintId,
        /// Its degree.
        degree: usize,
    },
    /// An agent has `|Kv| ≠ 1`.
    AgentObjectives {
        /// Offending agent.
        agent: AgentId,
        /// Its objective count.
        count: usize,
    },
    /// An objective has `|Vk| < 2`.
    ObjectiveDegree {
        /// Offending objective.
        obj: ObjectiveId,
        /// Its degree.
        degree: usize,
    },
    /// An agent has no constraint (`|Iv| = 0`).
    UnconstrainedAgent(AgentId),
    /// An objective coefficient differs from 1.
    ObjectiveCoefficient {
        /// Offending agent.
        agent: AgentId,
        /// The non-unit coefficient found.
        coef: f64,
    },
}

impl std::fmt::Display for SpecialFormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecialFormError::ConstraintDegree { cons, degree } => {
                write!(f, "constraint {cons} has degree {degree}, expected 2")
            }
            SpecialFormError::AgentObjectives { agent, count } => {
                write!(f, "agent {agent} is in {count} objectives, expected 1")
            }
            SpecialFormError::ObjectiveDegree { obj, degree } => {
                write!(f, "objective {obj} has degree {degree}, expected ≥ 2")
            }
            SpecialFormError::UnconstrainedAgent(v) => {
                write!(f, "agent {v} is in no constraint")
            }
            SpecialFormError::ObjectiveCoefficient { agent, coef } => {
                write!(
                    f,
                    "agent {agent} has objective coefficient {coef}, expected 1"
                )
            }
        }
    }
}

impl std::error::Error for SpecialFormError {}

/// A validated special-form instance with pre-computed partner tables.
#[derive(Clone, Debug)]
pub struct SpecialForm {
    inst: Instance,
    /// `k(v)` per agent.
    k_of: Vec<ObjectiveId>,
    /// CSR of [`ConsView`] per agent.
    cons_off: Vec<u32>,
    cons: Vec<ConsView>,
    /// `min_{i∈Iv} 1/a_iv` per agent (eq. (5)/(12)).
    cap: Vec<f64>,
}

impl SpecialForm {
    /// Validates and wraps an instance.
    pub fn new(inst: Instance) -> Result<Self, SpecialFormError> {
        for i in inst.constraints() {
            let d = inst.constraint_row(i).len();
            if d != 2 {
                return Err(SpecialFormError::ConstraintDegree { cons: i, degree: d });
            }
        }
        for k in inst.objectives() {
            let d = inst.objective_row(k).len();
            if d < 2 {
                return Err(SpecialFormError::ObjectiveDegree { obj: k, degree: d });
            }
        }
        let mut k_of = Vec::with_capacity(inst.n_agents());
        for v in inst.agents() {
            let objs = inst.agent_objectives(v);
            if objs.len() != 1 {
                return Err(SpecialFormError::AgentObjectives {
                    agent: v,
                    count: objs.len(),
                });
            }
            if objs[0].coef != 1.0 {
                return Err(SpecialFormError::ObjectiveCoefficient {
                    agent: v,
                    coef: objs[0].coef,
                });
            }
            if inst.agent_constraints(v).is_empty() {
                return Err(SpecialFormError::UnconstrainedAgent(v));
            }
            k_of.push(objs[0].obj);
        }

        let mut cons_off = Vec::with_capacity(inst.n_agents() + 1);
        cons_off.push(0u32);
        let mut cons = Vec::with_capacity(inst.n_constraint_edges());
        let mut cap = Vec::with_capacity(inst.n_agents());
        for v in inst.agents() {
            let mut c = f64::INFINITY;
            for ac in inst.agent_constraints(v) {
                let row = inst.constraint_row(ac.cons);
                let (own, other) = if row[0].agent == v {
                    (row[0], row[1])
                } else {
                    (row[1], row[0])
                };
                debug_assert_eq!(own.agent, v);
                cons.push(ConsView {
                    cons: ac.cons,
                    a_own: own.coef,
                    partner: other.agent,
                    a_partner: other.coef,
                });
                c = c.min(1.0 / own.coef);
            }
            cons_off.push(cons.len() as u32);
            cap.push(c);
        }

        Ok(SpecialForm {
            inst,
            k_of,
            cons_off,
            cons,
            cap,
        })
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// Replaces the two coefficients of constraint `i` in place (port
    /// order), maintaining every derived table — the partner views of
    /// both incident agents and their caps — in O(Δ).
    ///
    /// This is the special-form half of a §1.3 dynamic coefficient edit:
    /// the structure is untouched, so no re-validation is needed, and
    /// the result is exactly `SpecialForm::new` of the edited instance.
    /// Panics on non-positive/non-finite coefficients (matching the
    /// instance-level check).
    pub fn set_constraint_coefs(&mut self, i: ConstraintId, new: [f64; 2]) {
        self.inst
            .set_constraint_coefs(i, &new)
            .expect("coefficients must stay finite and > 0");
        for e in self.inst.constraint_row(i) {
            let v = e.agent;
            let lo = self.cons_off[v.idx()] as usize;
            let hi = self.cons_off[v.idx() + 1] as usize;
            let mut c = f64::INFINITY;
            for cv in &mut self.cons[lo..hi] {
                if cv.cons == i {
                    let row = self.inst.constraint_row(i);
                    let (own, other) = if row[0].agent == v {
                        (row[0], row[1])
                    } else {
                        (row[1], row[0])
                    };
                    cv.a_own = own.coef;
                    cv.a_partner = other.coef;
                }
                c = c.min(1.0 / cv.a_own);
            }
            self.cap[v.idx()] = c;
        }
    }

    /// Number of agents.
    pub fn n_agents(&self) -> usize {
        self.inst.n_agents()
    }

    /// `k(v)` — the unique objective adjacent to `v`.
    #[inline]
    pub fn k_of(&self, v: AgentId) -> ObjectiveId {
        self.k_of[v.idx()]
    }

    /// `N(v) = V_{k(v)} \ {v}` — the other agents sharing `v`'s objective.
    #[inline]
    pub fn others(&self, v: AgentId) -> impl Iterator<Item = AgentId> + '_ {
        self.inst
            .objective_row(self.k_of(v))
            .iter()
            .map(|e| e.agent)
            .filter(move |&w| w != v)
    }

    /// The constraints of `v` with partner information, in port order.
    #[inline]
    pub fn cons(&self, v: AgentId) -> &[ConsView] {
        &self.cons[self.cons_off[v.idx()] as usize..self.cons_off[v.idx() + 1] as usize]
    }

    /// `min_{i∈Iv} 1/a_iv` (eq. (5)/(12)).
    #[inline]
    pub fn cap(&self, v: AgentId) -> f64 {
        self.cap[v.idx()]
    }

    /// `max_k |Vk|` of this instance (the ΔK entering the ratio).
    pub fn delta_k(&self) -> usize {
        self.inst
            .objectives()
            .map(|k| self.inst.objective_row(k).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};
    use mmlp_instance::InstanceBuilder;

    #[test]
    fn wraps_generated_special_instances() {
        for seed in 0..5 {
            let inst = random_special_form(&SpecialFormConfig::default(), seed);
            let sf = SpecialForm::new(inst).expect("generator output is special");
            assert!(sf.delta_k() <= 3);
        }
    }

    #[test]
    fn partner_tables_are_correct() {
        let inst = cycle_special(4, 2.0);
        let sf = SpecialForm::new(inst).expect("cycle is special");
        for v in sf.instance().agents() {
            for cv in sf.cons(v) {
                assert_ne!(cv.partner, v);
                // Cross-check against the raw row.
                let row = sf.instance().constraint_row(cv.cons);
                assert!(row.iter().any(|e| e.agent == v && e.coef == cv.a_own));
                assert!(row
                    .iter()
                    .any(|e| e.agent == cv.partner && e.coef == cv.a_partner));
                assert_eq!(cv.a_own, 2.0);
            }
            assert_eq!(sf.cap(v), 0.5);
            // On the 2-regular cycle, |N(v)| = 1.
            assert_eq!(sf.others(v).count(), 1);
        }
    }

    #[test]
    fn k_of_matches_objective_rows() {
        let inst = random_special_form(&SpecialFormConfig::default(), 3);
        let sf = SpecialForm::new(inst).expect("special");
        for v in sf.instance().agents() {
            let k = sf.k_of(v);
            assert!(sf.instance().objective_row(k).iter().any(|e| e.agent == v));
        }
    }

    #[test]
    fn in_place_coef_set_matches_revalidation() {
        let sf0 = SpecialForm::new(random_special_form(&SpecialFormConfig::default(), 9))
            .expect("special");
        let mut sf = sf0.clone();
        let i = mmlp_instance::ConstraintId::new(2);
        sf.set_constraint_coefs(i, [1.75, 0.4]);

        // Reference: rebuild + re-validate the edited instance.
        let mut inst = sf0.instance().clone();
        inst.set_constraint_coefs(i, &[1.75, 0.4]).unwrap();
        let fresh = SpecialForm::new(inst).expect("still special");

        for v in sf.instance().agents() {
            assert_eq!(sf.cons(v), fresh.cons(v), "partner views of {v}");
            assert_eq!(sf.cap(v).to_bits(), fresh.cap(v).to_bits(), "cap of {v}");
            assert_eq!(sf.k_of(v), fresh.k_of(v));
        }
        assert_eq!(
            mmlp_instance::textfmt::write_instance(sf.instance()),
            mmlp_instance::textfmt::write_instance(fresh.instance())
        );
    }

    #[test]
    fn rejects_constraint_degree() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        let z = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0), (z, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (w, 1.0), (z, 1.0)]).unwrap();
        let err = SpecialForm::new(b.build().unwrap()).unwrap_err();
        assert!(matches!(
            err,
            SpecialFormError::ConstraintDegree { degree: 3, .. }
        ));
    }

    #[test]
    fn rejects_multi_objective_agents() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (w, 1.0)]).unwrap();
        let err = SpecialForm::new(b.build().unwrap()).unwrap_err();
        assert!(matches!(
            err,
            SpecialFormError::AgentObjectives { count: 2, .. }
        ));
    }

    #[test]
    fn rejects_singleton_objectives() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0)]).unwrap();
        b.add_objective(&[(w, 1.0)]).unwrap();
        let err = SpecialForm::new(b.build().unwrap()).unwrap_err();
        assert!(matches!(
            err,
            SpecialFormError::ObjectiveDegree { degree: 1, .. }
        ));
    }

    #[test]
    fn rejects_non_unit_objective_coefficients() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 2.0), (w, 1.0)]).unwrap();
        let err = SpecialForm::new(b.build().unwrap()).unwrap_err();
        assert!(matches!(err, SpecialFormError::ObjectiveCoefficient { coef, .. } if coef == 2.0));
    }

    #[test]
    fn rejects_unconstrained_agents() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        let z = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (z, 1.0)]).unwrap();
        b.add_objective(&[(w, 1.0), (z, 1.0)]).unwrap();
        let err = SpecialForm::new(b.build().unwrap()).unwrap_err();
        // z has |Kv| = 2, caught first — rebuild with z in one objective.
        assert!(matches!(err, SpecialFormError::AgentObjectives { .. }));

        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        let z = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (z, 1.0)]).unwrap();
        b.add_objective(&[(w, 1.0), (v, 1.0)]).unwrap();
        let err = SpecialForm::new(b.build().unwrap()).unwrap_err();
        assert!(
            matches!(err, SpecialFormError::AgentObjectives { .. })
                || matches!(err, SpecialFormError::UnconstrainedAgent(_))
        );
    }
}
