//! Hash-consed **flat view arena**: the deduplicated representation of
//! view trees.
//!
//! The predecessor paper (Floréen–Kaski–Musto–Suomela, arXiv:0710.1499)
//! observes that balls in the unfolding share almost all of their
//! subtrees: two non-backtracking walks that end in the same node with
//! the same remaining budget see *identical* futures. A recursive
//! `ViewTree` (the legacy representation, now behind the `legacy-tree`
//! feature) pays for that sharing with exponential
//! duplication — every message deep-clones the whole ball — whereas the
//! natural representation is a hash-consed DAG:
//!
//! * all view nodes of a run live in **one struct-of-arrays arena**
//!   (kind, CSR child ranges, per-port neighbour kinds, coefficient
//!   slices),
//! * structurally equal subtrees are **interned once** and addressed by
//!   a [`ViewId`]; two subtrees are equal **iff their ids are equal**,
//! * message payloads become ids (integers), and per-subtree
//!   computations can be memoised by id, so shared subtrees are
//!   evaluated once.
//!
//! The arena tracks both accountings: the **logical** tree metrics
//! (`size`, `depth`, `tree_bytes` — exactly what the recursive
//! `ViewTree` would report, used for faithful message-
//! byte accounting) and the **deduped** footprint (`unique_bytes`, the
//! bytes the arena actually stores, each interned node counted once).
//! Their quotient is the dedup ratio surfaced in [`crate::RunStats`].

use crate::topology::NodeInfo;
#[cfg(any(test, feature = "legacy-tree"))]
use crate::view::{ViewChild, ViewTree};
use mmlp_instance::NodeKind;
use std::collections::HashMap;

/// Index of an interned view node. Ids are dense, allocated in intern
/// order, so a node's children always have smaller ids than the node.
pub type ViewId = u32;

/// Child-slot encoding: beyond the gathering horizon.
pub const CHILD_CUT: u32 = u32::MAX;
/// Child-slot encoding: the edge towards the view root (non-backtracking
/// walks do not continue through it).
pub const CHILD_BACK: u32 = u32::MAX - 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_u64(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The hash-consed arena. One per run; ids are only meaningful within
/// the arena that produced them (or a clone of it — clones keep the
/// [`ViewArena::token`], since existing ids stay valid in them).
#[derive(Clone, Debug)]
pub struct ViewArena {
    /// Process-unique identity, so id caches can detect being handed a
    /// different arena (see `mmlp-core`'s view interner).
    token: u64,
    kinds: Vec<NodeKind>,
    /// CSR port ranges: node `id` owns ports
    /// `port_start[id]..port_start[id + 1]` of `children` / `port_kinds`.
    port_start: Vec<u32>,
    children: Vec<u32>,
    port_kinds: Vec<NodeKind>,
    /// CSR coefficient ranges (agents carry one coefficient per port;
    /// rows carry none).
    coef_start: Vec<u32>,
    coefs: Vec<f64>,
    /// Logical tree-node count of the subtree rooted at each id.
    sizes: Vec<u64>,
    /// Depth of the deepest `Sub` chain below each id.
    depths: Vec<u32>,
    /// Logical serialized-size estimate, matching
    /// `<ViewTree as Payload>::size_bytes` exactly.
    tree_bytes: Vec<u64>,
    /// Deduped footprint: every interned node counted once.
    unique_bytes: u64,
    /// Content hash → candidate ids (collisions resolved by comparing).
    table: HashMap<u64, Vec<ViewId>>,
}

impl Default for ViewArena {
    fn default() -> Self {
        ViewArena::new()
    }
}

impl ViewArena {
    /// An empty arena.
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);
        ViewArena {
            token: NEXT_TOKEN.fetch_add(1, Ordering::Relaxed),
            kinds: Vec::new(),
            port_start: vec![0],
            children: Vec::new(),
            port_kinds: Vec::new(),
            coef_start: vec![0],
            coefs: Vec::new(),
            sizes: Vec::new(),
            depths: Vec::new(),
            tree_bytes: Vec::new(),
            unique_bytes: 0,
            table: HashMap::new(),
        }
    }

    /// Process-unique arena identity; equal for clones (whose ids stay
    /// valid), distinct across independently created arenas.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Number of interned (unique) view nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The node's own class.
    pub fn kind(&self, id: ViewId) -> NodeKind {
        self.kinds[id as usize]
    }

    /// Child slot per port ([`CHILD_CUT`], [`CHILD_BACK`] or a
    /// [`ViewId`]).
    pub fn children(&self, id: ViewId) -> &[u32] {
        let (a, b) = self.port_range(id);
        &self.children[a..b]
    }

    /// The class of the neighbour behind each port.
    pub fn port_kinds(&self, id: ViewId) -> &[NodeKind] {
        let (a, b) = self.port_range(id);
        &self.port_kinds[a..b]
    }

    /// Agent-known coefficients, parallel to the ports (empty for rows).
    pub fn coefs(&self, id: ViewId) -> &[f64] {
        let a = self.coef_start[id as usize] as usize;
        let b = self.coef_start[id as usize + 1] as usize;
        &self.coefs[a..b]
    }

    /// Logical tree size (this node plus all `Sub` descendants, shared
    /// subtrees counted as often as a recursive tree would).
    pub fn size(&self, id: ViewId) -> u64 {
        self.sizes[id as usize]
    }

    /// Depth of the deepest `Sub` chain.
    pub fn depth(&self, id: ViewId) -> u32 {
        self.depths[id as usize]
    }

    /// Logical serialized-size estimate of the tree rooted here —
    /// bit-compatible with `<ViewTree as Payload>::size_bytes`.
    pub fn tree_bytes(&self, id: ViewId) -> u64 {
        self.tree_bytes[id as usize]
    }

    /// Deduped arena footprint in bytes: every interned node counted
    /// once (kind tag + per-port child reference and neighbour-kind tag
    /// + coefficients).
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    fn port_range(&self, id: ViewId) -> (usize, usize) {
        (
            self.port_start[id as usize] as usize,
            self.port_start[id as usize + 1] as usize,
        )
    }

    fn content_hash(
        kind: NodeKind,
        port_kinds: &[NodeKind],
        coefs: &[f64],
        children: &[u32],
    ) -> u64 {
        let mut h = fnv_u64(FNV_OFFSET, kind as u64);
        h = fnv_u64(h, port_kinds.len() as u64);
        for k in port_kinds {
            h = fnv_u64(h, *k as u64);
        }
        h = fnv_u64(h, coefs.len() as u64);
        for c in coefs {
            h = fnv_u64(h, c.to_bits());
        }
        for c in children {
            h = fnv_u64(h, *c as u64);
        }
        h
    }

    fn equals(
        &self,
        id: ViewId,
        kind: NodeKind,
        port_kinds: &[NodeKind],
        coefs: &[f64],
        children: &[u32],
    ) -> bool {
        self.kind(id) == kind
            && self.children(id) == children
            && self.port_kinds(id) == port_kinds
            && self.coefs(id).len() == coefs.len()
            && self
                .coefs(id)
                .iter()
                .zip(coefs)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Interns a view node, returning the id of the existing structurally
    /// equal node when there is one. `children` entries must be
    /// [`CHILD_CUT`], [`CHILD_BACK`] or ids already interned here;
    /// `port_kinds` is parallel to `children`; `coefs` is either empty
    /// (rows) or parallel to the ports (agents).
    pub fn intern(
        &mut self,
        kind: NodeKind,
        port_kinds: &[NodeKind],
        coefs: &[f64],
        children: &[u32],
    ) -> ViewId {
        debug_assert_eq!(port_kinds.len(), children.len());
        debug_assert!(coefs.is_empty() || coefs.len() == children.len());
        let h = Self::content_hash(kind, port_kinds, coefs, children);
        if let Some(candidates) = self.table.get(&h) {
            for &id in candidates {
                if self.equals(id, kind, port_kinds, coefs, children) {
                    return id;
                }
            }
        }
        let id = self.kinds.len() as ViewId;
        assert!(
            (id as u32) < CHILD_BACK,
            "view arena exhausted the id space"
        );
        self.kinds.push(kind);
        self.children.extend_from_slice(children);
        self.port_kinds.extend_from_slice(port_kinds);
        self.port_start.push(self.children.len() as u32);
        self.coefs.extend_from_slice(coefs);
        self.coef_start.push(self.coefs.len() as u32);
        self.seal_new_node(h, children, coefs.len());
        id
    }

    /// Pushes the derived metrics and the hash-table entry of the node
    /// whose columns were just extended (the shared tail of [`intern`]
    /// and [`intern_like`](Self::intern_like)).
    fn seal_new_node(&mut self, h: u64, children: &[u32], n_coefs: usize) {
        let id = (self.kinds.len() - 1) as ViewId;
        // Children are already interned (smaller ids), so the logical
        // metrics fold bottom-up in O(degree).
        let (mut size, mut depth, mut bytes) = (1u64, 0u32, 0u64);
        for &c in children {
            if c < CHILD_BACK {
                size += self.sizes[c as usize];
                depth = depth.max(1 + self.depths[c as usize]);
                bytes += self.tree_bytes[c as usize];
            }
        }
        bytes += 1 + 2 * children.len() as u64 + 8 * n_coefs as u64;
        self.sizes.push(size);
        self.depths.push(depth);
        self.tree_bytes.push(bytes);
        // Deduped cost of this node alone: kind tag, per-port child
        // reference (4) + neighbour-kind/slot tag (2), coefficients.
        self.unique_bytes += 1 + 6 * children.len() as u64 + 8 * n_coefs as u64;
        self.table.entry(h).or_default().push(id);
    }

    /// Interns a node sharing `proto`'s kind, port kinds and
    /// coefficients but carrying the given child slots — the shape of
    /// every [`absorb`](Self::absorb) / [`set_back`](Self::set_back) in
    /// the gather hot loop. The port-parallel columns are copied
    /// directly from `proto`'s CSR ranges (`extend_from_within`), never
    /// through temporaries.
    fn intern_like(&mut self, proto: ViewId, children: &[u32]) -> ViewId {
        debug_assert_eq!(self.children(proto).len(), children.len());
        let kind = self.kind(proto);
        let h = Self::content_hash(kind, self.port_kinds(proto), self.coefs(proto), children);
        if let Some(candidates) = self.table.get(&h) {
            for &id in candidates {
                if self.kind(id) == kind
                    && self.children(id) == children
                    && self.port_kinds(id) == self.port_kinds(proto)
                    && self.coefs(id).len() == self.coefs(proto).len()
                    && self
                        .coefs(id)
                        .iter()
                        .zip(self.coefs(proto))
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                {
                    return id;
                }
            }
        }
        let id = self.kinds.len() as ViewId;
        assert!(
            (id as u32) < CHILD_BACK,
            "view arena exhausted the id space"
        );
        let (pa, pb) = self.port_range(proto);
        let ca = self.coef_start[proto as usize] as usize;
        let cb = self.coef_start[proto as usize + 1] as usize;
        self.kinds.push(kind);
        self.children.extend_from_slice(children);
        self.port_kinds.extend_from_within(pa..pb);
        self.port_start.push(self.children.len() as u32);
        self.coefs.extend_from_within(ca..cb);
        self.coef_start.push(self.coefs.len() as u32);
        self.seal_new_node(h, children, cb - ca);
        id
    }

    /// The depth-0 view of a node: exactly its local input.
    pub fn depth_zero(&mut self, node: &NodeInfo) -> ViewId {
        let port_kinds: Vec<NodeKind> = node.ports.iter().map(|p| p.neighbor_kind).collect();
        let coefs: Vec<f64> = node.ports.iter().filter_map(|p| p.coef).collect();
        let children = vec![CHILD_CUT; node.degree()];
        self.intern(node.kind, &port_kinds, &coefs, &children)
    }

    /// A copy of `id` with the child slot at `port` replaced by
    /// [`CHILD_BACK`] — what a receiver does to a just-delivered view
    /// (the sender's port becomes the back edge). Shared subtrees below
    /// stay shared; only one node is (at most) added.
    pub fn set_back(&mut self, id: ViewId, port: u32) -> ViewId {
        if self.children(id)[port as usize] == CHILD_BACK {
            return id;
        }
        let mut children = self.children(id).to_vec();
        children[port as usize] = CHILD_BACK;
        self.intern_like(id, &children)
    }

    /// Builds the depth-`t+1` view from the depth-`t` views received on
    /// each port — the arena form of the legacy `ViewTree::from_inbox`: the
    /// sender-port slot of each delivered subtree becomes the back edge,
    /// silent ports become cuts; kind, port kinds and coefficients come
    /// from `own`.
    pub fn absorb(&mut self, own: ViewId, inbox: &[Option<(u32, ViewId)>]) -> ViewId {
        let children: Vec<u32> = inbox
            .iter()
            .map(|slot| match slot {
                Some((sender_port, sub)) => self.set_back(*sub, *sender_port),
                None => CHILD_CUT,
            })
            .collect();
        self.intern_like(own, &children)
    }

    /// Interns a legacy recursive tree (conversion layer for
    /// cross-checks and the lower-bound experiment; compiled only for
    /// tests and under the `legacy-tree` feature — deprecation step 3).
    #[cfg(any(test, feature = "legacy-tree"))]
    pub fn intern_tree(&mut self, tree: &ViewTree) -> ViewId {
        let children: Vec<u32> = tree
            .children
            .iter()
            .map(|c| match c {
                ViewChild::Back => CHILD_BACK,
                ViewChild::Cut => CHILD_CUT,
                ViewChild::Sub(t) => self.intern_tree(t),
            })
            .collect();
        self.intern(tree.kind, &tree.port_kinds, &tree.coefs, &children)
    }

    /// Expands an interned view back into the legacy recursive tree
    /// (compiled only for tests and under the `legacy-tree` feature —
    /// deprecation step 3).
    #[cfg(any(test, feature = "legacy-tree"))]
    pub fn to_tree(&self, id: ViewId) -> ViewTree {
        ViewTree {
            kind: self.kind(id),
            coefs: self.coefs(id).to_vec(),
            port_kinds: self.port_kinds(id).to_vec(),
            children: self
                .children(id)
                .iter()
                .map(|&c| match c {
                    CHILD_CUT => ViewChild::Cut,
                    CHILD_BACK => ViewChild::Back,
                    sub => ViewChild::Sub(Box::new(self.to_tree(sub))),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Network;
    use crate::view::gather_views;
    use mmlp_gen::special::{cycle_special, random_special_form, SpecialFormConfig};

    #[test]
    fn interning_is_idempotent_and_ids_are_equality() {
        let mut a = ViewArena::new();
        let leaf = a.intern(NodeKind::Constraint, &[NodeKind::Agent], &[], &[CHILD_CUT]);
        let leaf2 = a.intern(NodeKind::Constraint, &[NodeKind::Agent], &[], &[CHILD_CUT]);
        assert_eq!(leaf, leaf2);
        let agent = a.intern(NodeKind::Agent, &[NodeKind::Constraint], &[2.0], &[leaf]);
        let other = a.intern(NodeKind::Agent, &[NodeKind::Constraint], &[2.5], &[leaf]);
        assert_ne!(agent, other, "coefficients are part of the content");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn set_back_is_cached_and_idempotent() {
        let mut a = ViewArena::new();
        let node = a.intern(
            NodeKind::Constraint,
            &[NodeKind::Agent, NodeKind::Agent],
            &[],
            &[CHILD_CUT, CHILD_CUT],
        );
        let b1 = a.set_back(node, 1);
        let b2 = a.set_back(node, 1);
        assert_eq!(b1, b2);
        assert_eq!(a.set_back(b1, 1), b1, "already a back edge");
        assert_eq!(a.children(b1), &[CHILD_CUT, CHILD_BACK]);
    }

    #[test]
    fn tree_round_trip_preserves_structure_and_metrics() {
        let inst = random_special_form(&SpecialFormConfig::default(), 3);
        let net = Network::new(&inst);
        let (views, _) = gather_views(&net, 4);
        let mut a = ViewArena::new();
        for v in &views {
            let id = a.intern_tree(v);
            assert_eq!(a.size(id) as usize, v.size());
            assert_eq!(a.depth(id) as usize, v.depth());
            assert_eq!(a.tree_bytes(id) as usize, crate::Payload::size_bytes(v));
            assert_eq!(&a.to_tree(id), v, "round trip is exact");
        }
    }

    #[test]
    fn ids_agree_with_tree_equality() {
        let net_a = Network::new(&cycle_special(5, 1.0));
        let net_b = Network::new(&cycle_special(9, 1.0));
        let (va, _) = gather_views(&net_a, 6);
        let (vb, _) = gather_views(&net_b, 6);
        let mut arena = ViewArena::new();
        let ia: Vec<ViewId> = va.iter().map(|v| arena.intern_tree(v)).collect();
        let ib: Vec<ViewId> = vb.iter().map(|v| arena.intern_tree(v)).collect();
        for (x, vx) in va.iter().enumerate() {
            for (y, vy) in vb.iter().enumerate() {
                assert_eq!(
                    ia[x] == ib[y],
                    vx == vy,
                    "arena equality must agree with ViewTree equality ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn shared_subtrees_are_stored_once() {
        // On a cycle, deep views are paths over a 4-periodic node
        // pattern: the arena stays linear while logical sizes explode.
        let inst = cycle_special(2, 1.0);
        let net = Network::new(&inst);
        let (views, _) = gather_views(&net, 9);
        let mut a = ViewArena::new();
        let mut logical = 0u64;
        for v in &views {
            let id = a.intern_tree(v);
            logical += a.tree_bytes(id);
        }
        assert!(
            a.unique_bytes() < logical,
            "dedup must beat the logical footprint: {} vs {logical}",
            a.unique_bytes()
        );
    }
}
