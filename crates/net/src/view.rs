//! Full-information *view-tree* gathering.
//!
//! The radius-`D` **view** of a node `x` is the ball of radius `D` around
//! (a copy of) `x` in the *unfolding* (universal cover) of the network —
//! equivalently, the tree of non-backtracking walks of length ≤ `D`
//! starting at `x`, labelled with node kinds, port numbers and the
//! agent-known coefficients. §4.1 of the paper notes that *any* local
//! algorithm with horizon `D` can be implemented as: gather the radius-`D`
//! view, then compute the output from it — so this module is the
//! foundation of the faithful distributed implementation in `mmlp-core`.
//!
//! In the port-numbering model two nodes with equal views are
//! indistinguishable to every deterministic local algorithm; view
//! equality (`ViewTree: PartialEq`) is therefore the mechanical test used
//! by the lower-bound experiment (T5).
//!
//! Gathering costs one round per unit of radius; message sizes grow with
//! the ball size (exponentially in `D` for expander-ish networks), which
//! the byte accounting makes visible — this is the price of the generic
//! full-information approach.
//!
//! **Deprecation status (step 3).** The production gather is
//! [`gather_views_flat`] on the hash-consed [`ViewArena`]; the recursive
//! `ViewTree`, its clone-based protocol and `gather_views` are the
//! cross-check oracle only, compiled for this crate's tests and under
//! the `legacy-tree` feature.

use crate::arena::{ViewArena, ViewId};
#[cfg(any(test, feature = "legacy-tree"))]
use crate::engine::{self, Payload, Protocol, RunResult};
use crate::stats::RunStats;
use crate::topology::Network;
#[cfg(any(test, feature = "legacy-tree"))]
use crate::topology::NodeInfo;
#[cfg(any(test, feature = "legacy-tree"))]
use mmlp_instance::NodeKind;

/// What a node sees through one of its ports in its view tree.
///
/// Legacy representation (ViewTree deprecation step 3): compiled only
/// for this crate's tests and under the `legacy-tree` feature.
#[cfg(any(test, feature = "legacy-tree"))]
#[derive(Clone, Debug, PartialEq)]
pub enum ViewChild {
    /// The edge through which this subtree was entered (towards the view
    /// root). Non-backtracking walks do not continue through it.
    Back,
    /// Beyond the gathering horizon.
    Cut,
    /// The neighbour's subtree.
    Sub(Box<ViewTree>),
}

/// The (truncated) unfolded neighbourhood of a node.
///
/// Legacy representation (ViewTree deprecation step 3): every in-tree
/// consumer now runs on the hash-consed [`ViewArena`]; the recursive
/// tree survives only as the cross-check oracle, compiled for this
/// crate's tests and under the `legacy-tree` feature.
#[cfg(any(test, feature = "legacy-tree"))]
#[derive(Clone, Debug, PartialEq)]
pub struct ViewTree {
    /// Kind of this node.
    pub kind: NodeKind,
    /// For agent nodes: the coefficient on each port (`a_iv` / `c_kv`),
    /// parallel to `children`. Empty for constraints/objectives, whose
    /// local input has no coefficients.
    pub coefs: Vec<f64>,
    /// The class of the neighbour behind each port — part of the local
    /// input (an agent can tell its constraints from its objectives even
    /// before any communication).
    pub port_kinds: Vec<NodeKind>,
    /// One entry per port, in port order.
    pub children: Vec<ViewChild>,
}

#[cfg(any(test, feature = "legacy-tree"))]
impl ViewTree {
    /// Number of tree nodes (this node plus all `Sub` descendants).
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                ViewChild::Sub(t) => t.size(),
                _ => 0,
            })
            .sum::<usize>()
    }

    /// Depth of the deepest `Sub` chain.
    pub fn depth(&self) -> usize {
        self.children
            .iter()
            .map(|c| match c {
                ViewChild::Sub(t) => 1 + t.depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// The subtree reached through `port`, if within horizon.
    pub fn child(&self, port: usize) -> Option<&ViewTree> {
        match &self.children[port] {
            ViewChild::Sub(t) => Some(t),
            _ => None,
        }
    }

    /// The depth-0 view: exactly the node's local input (own kind,
    /// per-port neighbour kinds, agent-known coefficients), nothing else.
    pub fn depth_zero(node: &NodeInfo) -> ViewTree {
        ViewTree {
            kind: node.kind,
            coefs: node.ports.iter().filter_map(|p| p.coef).collect(),
            port_kinds: node.ports.iter().map(|p| p.neighbor_kind).collect(),
            children: vec![ViewChild::Cut; node.degree()],
        }
    }

    /// Builds the depth-`t+1` view of a node from the depth-`t` views
    /// received on each port (tagged with the sender's port, whose slot
    /// becomes [`ViewChild::Back`]). Ports with no message become
    /// [`ViewChild::Cut`]. Shared by the generic gathering protocol and
    /// the paper's algorithm's phase A.
    ///
    /// **Consumes** the inbox: the received subtrees are moved into the
    /// new view (their slots are left `None`) instead of being cloned
    /// and then mutated — on deep views the clone used to dominate the
    /// whole absorb.
    pub fn from_inbox(own: &ViewTree, inbox: &mut [Option<(u32, ViewTree)>]) -> ViewTree {
        let children: Vec<ViewChild> = inbox
            .iter_mut()
            .map(|slot| match slot.take() {
                Some((sender_port, mut sub)) => {
                    sub.children[sender_port as usize] = ViewChild::Back;
                    ViewChild::Sub(Box::new(sub))
                }
                None => ViewChild::Cut,
            })
            .collect();
        ViewTree {
            kind: own.kind,
            coefs: own.coefs.clone(),
            port_kinds: own.port_kinds.clone(),
            children,
        }
    }
}

#[cfg(any(test, feature = "legacy-tree"))]
impl Payload for ViewTree {
    fn size_bytes(&self) -> usize {
        // kind tag + per-port child tag + coefficients + recursion.
        1 + 2 * self.children.len()
            + 8 * self.coefs.len()
            + self
                .children
                .iter()
                .map(|c| match c {
                    ViewChild::Sub(t) => t.size_bytes(),
                    _ => 0,
                })
                .sum::<usize>()
    }
}

/// The gathering protocol: in round `t` every node sends its depth-`t`
/// view (tagged with the sending port so the receiver can mark the back
/// edge); after `D` rounds every node holds its depth-`D` view.
#[cfg(any(test, feature = "legacy-tree"))]
struct GatherViews {
    depth: usize,
}

#[cfg(any(test, feature = "legacy-tree"))]
struct GatherState {
    view: ViewTree,
}

#[cfg(any(test, feature = "legacy-tree"))]
impl GatherViews {
    fn absorb(state: &mut GatherState, _node: &NodeInfo, inbox: &mut [Option<(u32, ViewTree)>]) {
        state.view = ViewTree::from_inbox(&state.view, inbox);
    }
}

#[cfg(any(test, feature = "legacy-tree"))]
impl Protocol for GatherViews {
    type State = GatherState;
    type Message = (u32, ViewTree);

    fn rounds(&self) -> usize {
        self.depth
    }

    fn init(&self, node: &NodeInfo) -> GatherState {
        GatherState {
            view: ViewTree::depth_zero(node),
        }
    }

    fn round(
        &self,
        state: &mut GatherState,
        node: &NodeInfo,
        round: usize,
        inbox: &mut [Option<(u32, ViewTree)>],
        outbox: &mut [Option<(u32, ViewTree)>],
    ) {
        if round > 0 {
            Self::absorb(state, node, inbox);
        }
        for (p, slot) in outbox.iter_mut().enumerate() {
            *slot = Some((p as u32, state.view.clone()));
        }
    }

    fn finish(
        &self,
        state: &mut GatherState,
        node: &NodeInfo,
        inbox: &mut [Option<(u32, ViewTree)>],
    ) {
        if self.depth > 0 {
            Self::absorb(state, node, inbox);
        }
    }
}

/// Gathers every node's radius-`depth` view; returns the views (indexed
/// by flat node index, agents first) and the run accounting.
///
/// Legacy protocol (ViewTree deprecation step 3): cross-check oracle
/// for [`gather_views_flat`], compiled only for this crate's tests and
/// under the `legacy-tree` feature.
#[cfg(any(test, feature = "legacy-tree"))]
pub fn gather_views(net: &Network, depth: usize) -> (Vec<ViewTree>, RunStats) {
    let RunResult { states, stats } = engine::run(net, &GatherViews { depth });
    (states.into_iter().map(|s| s.view).collect(), stats)
}

/// Result of a flat (hash-consed) gather: one shared arena, the root id
/// per flat node index, and the run accounting.
pub struct FlatViews {
    /// The arena holding every view node of the run, deduplicated.
    pub arena: ViewArena,
    /// Radius-`depth` view id of each node (flat index, agents first).
    pub roots: Vec<ViewId>,
    /// Accounting: `messages`/`bytes` report the **logical** protocol
    /// cost (identical to the legacy `gather_views` protocol, as if full
    /// trees were serialised), while `interned_nodes`/`arena_bytes`
    /// report the deduped footprint actually materialised.
    pub stats: RunStats,
}

/// Legacy `gather_views` on the flat arena: the same round structure — in
/// round `t` every node sends its depth-`t` view on every port — but a
/// message is an interned [`ViewId`] instead of a deep-cloned tree, and
/// absorbing an inbox interns at most one new node per delivered
/// subtree. Per-round work drops from the ball size (exponential in
/// `depth` on expander-ish networks) to `O(Σ degree)`.
///
/// The returned roots satisfy `arena.to_tree(roots[x]) ==
/// gather_views(net, depth).0[x]` exactly (asserted in tests against
/// the legacy protocol, which is compiled only for tests and under the
/// `legacy-tree` feature), and the logical message/byte accounting is
/// bit-identical to the legacy protocol's.
pub fn gather_views_flat(net: &Network, depth: usize) -> FlatViews {
    let n = net.n_nodes();
    let graph = net.graph();
    let mut arena = ViewArena::new();
    let mut views: Vec<ViewId> = (0..n as u32)
        .map(|x| arena.depth_zero(net.info(x)))
        .collect();
    let mut stats = RunStats {
        rounds: depth,
        ..RunStats::default()
    };
    let mut inbox: Vec<Option<(u32, ViewId)>> = Vec::new();
    for _ in 0..depth {
        // Send + deliver: every port carries the sender's current view,
        // accounted at its logical serialized size (port tag + tree).
        let (mut msgs, mut bytes) = (0u64, 0u64);
        for (x, &v) in views.iter().enumerate() {
            let deg = graph.neighbors(x as u32).len() as u64;
            msgs += deg;
            bytes += deg * (4 + arena.tree_bytes(v));
        }
        stats.messages += msgs;
        stats.bytes += bytes;
        stats.messages_per_round.push(msgs);
        stats.bytes_per_round.push(bytes);
        // Absorb: each node's next view references the neighbours'
        // current views with the sender port marked as the back edge.
        let mut next = Vec::with_capacity(n);
        for x in 0..n as u32 {
            inbox.clear();
            inbox.extend(
                graph
                    .neighbors(x)
                    .iter()
                    .map(|adj| Some((adj.port_at_to, views[adj.to as usize]))),
            );
            next.push(arena.absorb(views[x as usize], &inbox));
        }
        views = next;
    }
    stats.interned_nodes = arena.len() as u64;
    stats.arena_bytes = arena.unique_bytes();
    stats.peak_arena_bytes = arena.unique_bytes();
    FlatViews {
        arena,
        roots: views,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::special::{cycle_special, path_special};
    use mmlp_instance::InstanceBuilder;

    #[test]
    fn depth_zero_views_are_local_inputs() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        b.add_constraint(&[(v, 2.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 3.0)]).unwrap();
        b.add_objective(&[(w, 1.0)]).unwrap();
        let net = Network::new(&b.build().unwrap());
        let (views, stats) = gather_views(&net, 0);
        assert_eq!(stats.messages, 0);
        assert_eq!(views[0].kind, NodeKind::Agent);
        assert_eq!(views[0].coefs, vec![2.0, 3.0]);
        assert_eq!(views[0].children, vec![ViewChild::Cut, ViewChild::Cut]);
        assert_eq!(views[2].kind, NodeKind::Constraint);
        assert!(
            views[2].coefs.is_empty(),
            "constraints know no coefficients"
        );
    }

    #[test]
    fn full_depth_view_of_a_tree_reconstructs_it() {
        // Star: one constraint with 3 agents, objectives on each agent.
        let mut b = InstanceBuilder::new();
        let agents: Vec<_> = (0..3).map(|_| b.add_agent()).collect();
        b.add_constraint(&[(agents[0], 1.0), (agents[1], 1.0), (agents[2], 1.0)])
            .unwrap();
        for &a in &agents {
            b.add_objective(&[(a, 1.0)]).unwrap();
        }
        let inst = b.build().unwrap();
        let net = Network::new(&inst);
        // Diameter = 4 (objective — agent — constraint — agent — objective).
        let (views, _) = gather_views(&net, 4);
        let total = inst.n_agents() + inst.n_constraints() + inst.n_objectives();
        for view in views.iter().take(net.n_nodes()) {
            assert_eq!(
                view.size(),
                total,
                "a tree's full-radius view contains every node exactly once"
            );
        }
    }

    #[test]
    fn view_depth_matches_request() {
        let inst = cycle_special(6, 1.0);
        let net = Network::new(&inst);
        for d in [0, 1, 3, 5] {
            let (views, stats) = gather_views(&net, d);
            assert!(views.iter().all(|v| v.depth() == d));
            assert_eq!(stats.rounds, d);
        }
    }

    #[test]
    fn cycle_views_unfold_past_the_cycle_length() {
        // Views are balls in the unfolding: on a cycle of total length 8
        // (2 objectives), a depth-9 view is a path of 19 nodes even
        // though the graph has only 8 — the walk wraps around.
        let inst = cycle_special(2, 1.0);
        let net = Network::new(&inst);
        let (views, _) = gather_views(&net, 9);
        for v in &views {
            assert_eq!(v.size(), 19, "2·9 + 1 nodes in the unfolded path");
        }
    }

    #[test]
    fn even_cycle_agents_share_views_with_long_cycle() {
        // All even-index agents of any two long-enough cycles have equal
        // views: the cycle length is invisible below the horizon.
        let d = 6;
        let net_a = Network::new(&cycle_special(5, 1.0));
        let net_b = Network::new(&cycle_special(9, 1.0));
        let (va, _) = gather_views(&net_a, d);
        let (vb, _) = gather_views(&net_b, d);
        assert_eq!(va[0], vb[0], "agent 0 views match across cycle lengths");
        assert_eq!(va[2], vb[2], "agent 2 is also even-type");
        assert_eq!(va[0], va[2], "all even-type agents look alike");
        assert_ne!(
            va[0], va[1],
            "odd-type agents have mirrored port orientation"
        );
    }

    #[test]
    fn path_interior_views_match_cycle_views() {
        // The classic §3 indistinguishability: a long path's interior
        // agent cannot tell it is not on a cycle.
        let d = 4;
        let cycle = Network::new(&cycle_special(8, 1.0));
        let path = Network::new(&path_special(8, 1.0));
        let (vc, _) = gather_views(&cycle, d);
        let (vp, _) = gather_views(&path, d);
        // Path agent 8 (objective 4, first slot) is ≥ d hops from both
        // ends; cycle agent 0 is the same even-type agent.
        assert_eq!(vp[8], vc[0]);
    }

    #[test]
    fn message_bytes_grow_with_depth() {
        let inst = cycle_special(8, 1.0);
        let net = Network::new(&inst);
        let (_, s1) = gather_views(&net, 2);
        let (_, s2) = gather_views(&net, 6);
        assert!(s2.bytes > s1.bytes);
        assert!(s2.bytes_per_round.last().unwrap() > s2.bytes_per_round.first().unwrap());
    }

    #[test]
    fn views_expose_coefficients_along_the_walk() {
        let inst = cycle_special(3, 0.25);
        let net = Network::new(&inst);
        let (views, _) = gather_views(&net, 2);
        // Agent view: port 0 leads to the constraint; its subtree leads
        // to the partner agent whose coefs include 0.25.
        let through_cons = views[0].child(0).expect("within horizon");
        assert_eq!(through_cons.kind, NodeKind::Constraint);
        let partner = through_cons
            .children
            .iter()
            .find_map(|c| match c {
                ViewChild::Sub(t) => Some(t),
                _ => None,
            })
            .expect("partner agent in view");
        assert_eq!(partner.kind, NodeKind::Agent);
        assert!(partner.coefs.contains(&0.25));
    }

    #[test]
    fn view_tree_size_bytes_is_monotone_in_size() {
        let inst = cycle_special(4, 1.0);
        let net = Network::new(&inst);
        let (v1, _) = gather_views(&net, 1);
        let (v3, _) = gather_views(&net, 3);
        assert!(v3[0].size_bytes() > v1[0].size_bytes());
    }

    #[test]
    fn flat_gather_matches_legacy_views_and_stats() {
        for inst in [cycle_special(5, 0.75), path_special(6, 1.25)] {
            let net = Network::new(&inst);
            for depth in [0, 1, 4, 7] {
                let (legacy, legacy_stats) = gather_views(&net, depth);
                let flat = gather_views_flat(&net, depth);
                assert_eq!(flat.stats.messages, legacy_stats.messages);
                assert_eq!(flat.stats.bytes, legacy_stats.bytes);
                assert_eq!(flat.stats.bytes_per_round, legacy_stats.bytes_per_round);
                for (x, tree) in legacy.iter().enumerate() {
                    assert_eq!(
                        &flat.arena.to_tree(flat.roots[x]),
                        tree,
                        "node {x} at depth {depth}"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_gather_dedups_on_cycles() {
        // Non-tree topology: logical bytes grow with the unfolding while
        // the arena stays linear — the dedup ratio must exceed 1.
        let net = Network::new(&cycle_special(6, 1.0));
        let flat = gather_views_flat(&net, 8);
        assert!(flat.stats.interned_nodes > 0);
        assert!(
            flat.stats.dedup_ratio() > 1.0,
            "ratio {}",
            flat.stats.dedup_ratio()
        );
        assert_eq!(flat.stats.peak_arena_bytes, flat.stats.arena_bytes);
    }

    #[test]
    fn flat_roots_identify_indistinguishable_nodes() {
        // The §3 indistinguishability, now an integer compare: equal
        // views ⇔ equal interned roots.
        let net = Network::new(&cycle_special(8, 1.0));
        let flat = gather_views_flat(&net, 5);
        assert_eq!(flat.roots[0], flat.roots[2], "even-type agents agree");
        assert_ne!(flat.roots[0], flat.roots[1], "odd-type agents differ");
    }
}
