//! # `mmlp-net`
//!
//! A synchronous, port-numbered, **anonymous** message-passing simulator —
//! the model of distributed computation of §1.2 of the paper:
//!
//! * one computational node per agent / constraint / objective,
//! * synchronous rounds: local computation, then one message per incident
//!   edge out, then one message per incident edge in,
//! * **no node identifiers** — a node can refer to its neighbours only by
//!   its own port numbers (port numbering model), and its local input is
//!   exactly the paper's: agents know their incident coefficients;
//!   constraints and objectives know only their degree,
//! * after a constant number `D` of rounds, agents produce output.
//!
//! Contents:
//!
//! * [`topology::Network`] — the communication graph of an instance plus
//!   each node's (anonymous) local input.
//! * [`engine`] — sequential and crossbeam-parallel round executors for
//!   any [`engine::Protocol`]; both produce bit-identical results.
//! * [`view`] — full-information *view gathering*: after `D` rounds
//!   every node holds its radius-`D` view of the **unfolding** (universal
//!   cover) of the network, which is the canonical way to implement any
//!   local algorithm (§4.1). Message sizes are accounted, exposing the
//!   exponential cost of full-information gathering. The production
//!   gather is [`view::gather_views_flat`] on the arena; the recursive
//!   `ViewTree` path compiles only for tests and under the
//!   `legacy-tree` feature (deprecation step 3).
//! * [`arena`] — the hash-consed **flat view arena**: structurally equal
//!   subtrees interned once, subtree equality as an integer compare,
//!   payloads as arena ids. [`view::gather_views_flat`] gathers the same
//!   views as the legacy protocol at a per-round cost of `O(Σ degree)`
//!   instead of the ball size, with both logical and deduped byte
//!   accounting.
//! * [`lanes`] — chunked-`f64`-lane fold helpers over the arena's
//!   struct-of-arrays coefficient slices, with the bit-identity /
//!   reassociation contract documented per helper (and in
//!   `specs/PERF.md`).
//! * [`stats::RunStats`] — rounds, message and byte accounting, plus the
//!   interned-node / deduped-byte counters of flat runs.

#![deny(missing_docs)]

pub mod arena;
pub mod engine;
pub mod lanes;
pub mod stats;
pub mod topology;
pub mod view;

pub use arena::{ViewArena, ViewId, CHILD_BACK, CHILD_CUT};
pub use engine::{Payload, Protocol, RunResult};
pub use lanes::{min_lanes, min_recip_where, LANES};
pub use stats::RunStats;
pub use topology::{Network, NodeInfo, PortInfo};
pub use view::{gather_views_flat, FlatViews};
// ViewTree deprecation step 3: the recursive tree and its clone-based
// gathering protocol are no longer part of the default public surface;
// they remain the cross-check oracle for tests and `legacy-tree` users.
#[cfg(any(test, feature = "legacy-tree"))]
pub use view::{gather_views, ViewChild, ViewTree};
