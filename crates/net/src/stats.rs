//! Message and byte accounting for protocol runs.

/// Totals for one protocol execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Number of synchronous rounds executed.
    pub rounds: usize,
    /// Total messages delivered (a `None` in an outbox slot is silence
    /// and is not counted).
    pub messages: u64,
    /// Total payload bytes delivered, per [`crate::engine::Payload`]
    /// accounting.
    pub bytes: u64,
    /// Messages delivered per round.
    pub messages_per_round: Vec<u64>,
    /// Payload bytes delivered per round.
    pub bytes_per_round: Vec<u64>,
    /// Unique view nodes interned by a flat (hash-consed) run; 0 for
    /// runs that never built a view arena.
    pub interned_nodes: u64,
    /// Deduped arena footprint in bytes (each interned node once); the
    /// logical payload volume stays in `bytes`. 0 without an arena.
    pub arena_bytes: u64,
    /// Largest arena footprint held at any point of the run (equals
    /// `arena_bytes` for a single monotonically-growing gather).
    pub peak_arena_bytes: u64,
}

impl RunStats {
    /// Largest per-round byte volume (the peak bandwidth a real network
    /// would need).
    pub fn peak_round_bytes(&self) -> u64 {
        self.bytes_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Mean messages per round.
    pub fn mean_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }

    /// How much smaller the deduped arena is than the logical payload
    /// volume: `bytes / arena_bytes`. Greater than 1 whenever subtrees
    /// were shared (any non-tree topology, or any re-sent view); 0 when
    /// the run kept no arena.
    pub fn dedup_ratio(&self) -> f64 {
        if self.arena_bytes == 0 {
            0.0
        } else {
            self.bytes as f64 / self.arena_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = RunStats {
            rounds: 2,
            messages: 10,
            bytes: 100,
            messages_per_round: vec![4, 6],
            bytes_per_round: vec![30, 70],
            ..RunStats::default()
        };
        assert_eq!(s.peak_round_bytes(), 70);
        assert_eq!(s.mean_messages_per_round(), 5.0);
        assert_eq!(s.dedup_ratio(), 0.0, "no arena, no ratio");
        let flat = RunStats {
            bytes: 100,
            arena_bytes: 40,
            ..RunStats::default()
        };
        assert_eq!(flat.dedup_ratio(), 2.5);
    }

    #[test]
    fn empty_run() {
        let s = RunStats::default();
        assert_eq!(s.peak_round_bytes(), 0);
        assert_eq!(s.mean_messages_per_round(), 0.0);
    }
}
