//! Synchronous round executors (sequential and parallel).
//!
//! Execution of a [`Protocol`] with `D = rounds()`:
//!
//! ```text
//! state ← init(local input)              at every node, in parallel
//! for t in 0..D:
//!     outbox ← round(state, t, inbox)    compute + send
//!     inbox  ← delivered outboxes        receive
//! finish(state, inbox)                   consume the last messages
//! ```
//!
//! which is exactly the paper's model (§1.2): per round each node
//! performs local computation, sends one (optional) message per incident
//! edge, and receives one per incident edge.
//!
//! The parallel executor shards nodes across threads with a barrier per
//! phase; because each phase only writes node-local slots, its results
//! are bit-identical to the sequential executor (asserted in tests).

use crate::stats::RunStats;
use crate::topology::{Network, NodeInfo};

/// A message payload with byte accounting (a real network would
/// serialise it; we only measure).
pub trait Payload: Clone + Send + Sync {
    /// Serialised size estimate in bytes.
    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl Payload for f64 {}
impl Payload for u64 {}
impl Payload for u32 {}
impl Payload for bool {}
impl Payload for () {}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        8 + self.iter().map(Payload::size_bytes).sum::<usize>()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn size_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::size_bytes)
    }
}

/// A synchronous distributed algorithm in the port-numbering model.
///
/// The protocol object itself is shared immutable configuration; all
/// per-node state lives in `State`. Nodes are anonymous: the only inputs
/// are the [`NodeInfo`] (own kind + per-port info) and received messages.
pub trait Protocol: Sync {
    /// Per-node state.
    type State: Send;
    /// Message payload.
    type Message: Payload;

    /// Number of send/receive cycles.
    fn rounds(&self) -> usize;

    /// Initial state from the node's local input.
    fn init(&self, node: &NodeInfo) -> Self::State;

    /// One round: read `inbox` (message per port from the previous
    /// round; all `None` in round 0), update the state, write `outbox`
    /// (pre-cleared to `None`; `Some(m)` on port `p` sends `m` along
    /// port `p`). The inbox is mutable so protocols can `take()` large
    /// payloads instead of cloning them — the engine overwrites every
    /// slot at the next delivery regardless.
    fn round(
        &self,
        state: &mut Self::State,
        node: &NodeInfo,
        round: usize,
        inbox: &mut [Option<Self::Message>],
        outbox: &mut [Option<Self::Message>],
    );

    /// Consume the messages received in the final round (the inbox may
    /// be taken from, as in [`Protocol::round`]).
    fn finish(&self, state: &mut Self::State, node: &NodeInfo, inbox: &mut [Option<Self::Message>]);
}

/// Final states plus accounting.
#[derive(Clone, Debug)]
pub struct RunResult<S> {
    /// Final state per node, indexed by flat node index (agents first —
    /// see [`Network::n_agents`]).
    pub states: Vec<S>,
    /// Message/byte accounting.
    pub stats: RunStats,
}

/// Runs a protocol sequentially.
pub fn run<P: Protocol>(net: &Network, protocol: &P) -> RunResult<P::State> {
    run_inner(net, protocol, 1)
}

/// Runs a protocol with `threads` worker threads (crossbeam scoped).
/// Produces results identical to [`run`].
pub fn run_parallel<P: Protocol>(
    net: &Network,
    protocol: &P,
    threads: usize,
) -> RunResult<P::State> {
    run_inner(net, protocol, threads.max(1))
}

fn mailbox_shape<M>(net: &Network) -> Vec<Vec<Option<M>>> {
    (0..net.n_nodes() as u32)
        .map(|x| {
            let deg = net.info(x).degree();
            let mut v = Vec::with_capacity(deg);
            v.resize_with(deg, || None);
            v
        })
        .collect()
}

fn run_inner<P: Protocol>(net: &Network, protocol: &P, threads: usize) -> RunResult<P::State> {
    let n = net.n_nodes();
    let mut states: Vec<P::State> = (0..n as u32).map(|x| protocol.init(net.info(x))).collect();
    let mut inboxes: Vec<Vec<Option<P::Message>>> = mailbox_shape(net);
    let mut outboxes: Vec<Vec<Option<P::Message>>> = mailbox_shape(net);
    let rounds = protocol.rounds();
    let mut stats = RunStats {
        rounds,
        ..RunStats::default()
    };

    for t in 0..rounds {
        // Phase 1: compute. Writes states[x], inboxes[x] (protocols may
        // take received payloads) and outboxes[x] only.
        if threads <= 1 || n < 256 {
            for x in 0..n {
                for slot in outboxes[x].iter_mut() {
                    *slot = None;
                }
                protocol.round(
                    &mut states[x],
                    net.info(x as u32),
                    t,
                    &mut inboxes[x],
                    &mut outboxes[x],
                );
            }
        } else {
            let chunk = n.div_ceil(threads);
            crossbeam::thread::scope(|scope| {
                for (shard, ((st, ib), ob)) in states
                    .chunks_mut(chunk)
                    .zip(inboxes.chunks_mut(chunk))
                    .zip(outboxes.chunks_mut(chunk))
                    .enumerate()
                {
                    let base = shard * chunk;
                    scope.spawn(move |_| {
                        for (off, ((state, inbox), outbox)) in st
                            .iter_mut()
                            .zip(ib.iter_mut())
                            .zip(ob.iter_mut())
                            .enumerate()
                        {
                            let x = base + off;
                            for slot in outbox.iter_mut() {
                                *slot = None;
                            }
                            protocol.round(state, net.info(x as u32), t, inbox, outbox);
                        }
                    });
                }
            })
            .expect("compute phase");
        }

        // Phase 2: deliver (pull model: my inbox slot p comes from the
        // neighbour's outbox slot at the reciprocal port). Payloads are
        // **moved**, never cloned: port numbering makes delivery a
        // bijection between outbox and inbox slots — outbox slot (y, q)
        // is read exactly once, by the unique neighbour x whose port p
        // satisfies reciprocity — so every slot can be `take`n.
        let graph = net.graph();
        let (msgs, bytes) = if threads <= 1 || n < 256 {
            let (mut msgs, mut bytes) = (0u64, 0u64);
            for (x, inbox) in inboxes.iter_mut().enumerate() {
                for (slot, adj) in inbox.iter_mut().zip(graph.neighbors(x as u32)) {
                    let incoming = outboxes[adj.to as usize][adj.port_at_to as usize].take();
                    if let Some(m) = &incoming {
                        msgs += 1;
                        bytes += m.size_bytes() as u64;
                    }
                    *slot = incoming;
                }
            }
            (msgs, bytes)
        } else {
            let chunk = n.div_ceil(threads);
            let taps = OutboxTaps {
                bases: outboxes.iter_mut().map(|v| v.as_mut_ptr()).collect(),
            };
            let taps_ref = &taps;
            let results: Vec<(u64, u64)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = inboxes
                    .chunks_mut(chunk)
                    .enumerate()
                    .map(|(shard, ib)| {
                        scope.spawn(move |_| {
                            let (mut msgs, mut bytes) = (0u64, 0u64);
                            for (off, inbox) in ib.iter_mut().enumerate() {
                                let x = (shard * chunk + off) as u32;
                                for (p, adj) in graph.neighbors(x).iter().enumerate() {
                                    // SAFETY: reciprocal ports pair each
                                    // outbox slot with exactly one inbox
                                    // slot, so no two threads touch the
                                    // same (adj.to, adj.port_at_to). The
                                    // assert turns a violated invariant
                                    // into a deterministic panic under
                                    // tests instead of a data race.
                                    debug_assert_eq!(
                                        {
                                            let back =
                                                graph.neighbors(adj.to)[adj.port_at_to as usize];
                                            (back.to, back.port_at_to)
                                        },
                                        (x, p as u32),
                                        "reciprocal port numbering violated"
                                    );
                                    let incoming = unsafe {
                                        taps_ref.take(adj.to as usize, adj.port_at_to as usize)
                                    };
                                    if let Some(m) = &incoming {
                                        msgs += 1;
                                        bytes += m.size_bytes() as u64;
                                    }
                                    inbox[p] = incoming;
                                }
                            }
                            (msgs, bytes)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("deliver"))
                    .collect()
            })
            .expect("deliver phase");
            results
                .into_iter()
                .fold((0, 0), |(m, b), (dm, db)| (m + dm, b + db))
        };
        stats.messages += msgs;
        stats.bytes += bytes;
        stats.messages_per_round.push(msgs);
        stats.bytes_per_round.push(bytes);
    }

    for x in 0..n {
        protocol.finish(&mut states[x], net.info(x as u32), &mut inboxes[x]);
    }

    RunResult { states, stats }
}

/// Shared mutable access to the outbox slots during parallel delivery.
/// Holds one raw base pointer per node's outbox, collected while the
/// outboxes were exclusively borrowed; `take` works purely in raw
/// pointer arithmetic so no (potentially overlapping) `&mut` to a whole
/// outbox is ever materialized. Sound only because delivery is a
/// bijection: each (node, port) slot is taken by exactly one receiver
/// thread (see the call site).
struct OutboxTaps<M> {
    bases: Vec<*mut Option<M>>,
}

unsafe impl<M: Send> Sync for OutboxTaps<M> {}

impl<M> OutboxTaps<M> {
    /// Takes the message at `(node, port)`.
    ///
    /// # Safety
    /// `port` must be in bounds for `node`'s outbox (reciprocal port
    /// numbering guarantees it), and no other thread may access the
    /// same `(node, port)` slot for the lifetime of the delivery phase.
    unsafe fn take(&self, node: usize, port: usize) -> Option<M> {
        std::ptr::replace(self.bases[node].add(port), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::{InstanceBuilder, NodeKind};

    /// Flood the minimum of per-node tokens for `rounds` rounds. Agents
    /// start with `token = port count of objectives` (arbitrary local
    /// quantity); everyone relays the running minimum.
    struct FloodMin {
        rounds: usize,
    }

    struct FloodState {
        min: f64,
    }

    impl Protocol for FloodMin {
        type State = FloodState;
        type Message = f64;

        fn rounds(&self) -> usize {
            self.rounds
        }

        fn init(&self, node: &NodeInfo) -> FloodState {
            // Agents seed with their smallest coefficient; rows with +inf.
            let min = node
                .ports
                .iter()
                .filter_map(|p| p.coef)
                .fold(f64::INFINITY, f64::min);
            FloodState { min }
        }

        fn round(
            &self,
            state: &mut FloodState,
            _node: &NodeInfo,
            _round: usize,
            inbox: &mut [Option<f64>],
            outbox: &mut [Option<f64>],
        ) {
            for m in inbox.iter().flatten() {
                state.min = state.min.min(*m);
            }
            for slot in outbox.iter_mut() {
                *slot = Some(state.min);
            }
        }

        fn finish(&self, state: &mut FloodState, _node: &NodeInfo, inbox: &mut [Option<f64>]) {
            for m in inbox.iter().flatten() {
                state.min = state.min.min(*m);
            }
        }
    }

    fn chain(n: usize) -> Network {
        // Agents in a path: v0 -c- v1 -c- v2 ... with an objective per agent
        // carrying coefficient (j+1).
        let mut b = InstanceBuilder::new();
        let agents: Vec<_> = (0..n).map(|_| b.add_agent()).collect();
        for w in agents.windows(2) {
            b.add_constraint(&[(w[0], 10.0), (w[1], 10.0)]).unwrap();
        }
        for (j, &v) in agents.iter().enumerate() {
            b.add_objective(&[(v, (j + 1) as f64)]).unwrap();
        }
        Network::new(&b.build().unwrap())
    }

    #[test]
    fn flooding_reaches_radius_rounds() {
        let net = chain(6);
        // Minimum over all agents is coefficient 1.0 at agent 0 (its
        // objective coef); after enough rounds everyone knows it.
        let result = run(&net, &FloodMin { rounds: 2 * 6 });
        for s in &result.states {
            assert_eq!(s.min, 1.0);
        }
        // With 1 round, the far end cannot know the global minimum.
        let result = run(&net, &FloodMin { rounds: 1 });
        let far_agent = &result.states[5];
        assert!(far_agent.min > 1.0);
    }

    #[test]
    fn locality_is_respected_exactly() {
        // Information travels exactly one hop per round: agent j is at
        // graph distance 2j from agent 0, so it learns agent 0's token
        // after exactly 2j rounds and not before.
        let n = 5;
        for rounds in 1..(2 * n) {
            let net = chain(n);
            let result = run(&net, &FloodMin { rounds });
            for j in 0..n {
                let expected_min = if 2 * j <= rounds {
                    1.0
                } else {
                    // Nearest reachable agent: those within rounds hops.
                    ((j - (rounds / 2)) + 1) as f64
                };
                let got = result.states[j].min.min(10.0);
                assert_eq!(got, expected_min, "agent {j} after {rounds} rounds");
            }
        }
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = chain(3);
        let result = run(&net, &FloodMin { rounds: 2 });
        // Every port sends every round: total ports = 2·|E|.
        let total_ports: u64 = (0..net.n_nodes() as u32)
            .map(|x| net.info(x).degree() as u64)
            .sum();
        assert_eq!(result.stats.messages, 2 * total_ports);
        assert_eq!(result.stats.bytes, 2 * total_ports * 8);
        assert_eq!(result.stats.messages_per_round.len(), 2);
        assert_eq!(result.stats.rounds, 2);
    }

    #[test]
    fn parallel_equals_sequential() {
        let net = chain(40);
        let seq = run(&net, &FloodMin { rounds: 7 });
        for threads in [2, 3, 8] {
            let par = run_parallel(&net, &FloodMin { rounds: 7 }, threads);
            assert_eq!(par.stats, seq.stats);
            for (a, b) in par.states.iter().zip(&seq.states) {
                assert_eq!(a.min.to_bits(), b.min.to_bits());
            }
        }
    }

    #[test]
    fn silence_costs_nothing() {
        struct Quiet;
        impl Protocol for Quiet {
            type State = ();
            type Message = u32;
            fn rounds(&self) -> usize {
                3
            }
            fn init(&self, _node: &NodeInfo) {}
            fn round(
                &self,
                _s: &mut (),
                _n: &NodeInfo,
                _r: usize,
                _i: &mut [Option<u32>],
                _o: &mut [Option<u32>],
            ) {
            }
            fn finish(&self, _s: &mut (), _n: &NodeInfo, _i: &mut [Option<u32>]) {}
        }
        let net = chain(4);
        let result = run(&net, &Quiet);
        assert_eq!(result.stats.messages, 0);
        assert_eq!(result.stats.bytes, 0);
    }

    #[test]
    fn node_kinds_visible_to_protocol() {
        let net = chain(2);
        let mut kinds = Vec::new();
        for x in 0..net.n_nodes() as u32 {
            kinds.push(net.info(x).kind);
        }
        assert_eq!(
            kinds,
            vec![
                NodeKind::Agent,
                NodeKind::Agent,
                NodeKind::Constraint,
                NodeKind::Objective,
                NodeKind::Objective
            ]
        );
    }

    #[test]
    fn zero_round_protocols_only_init_and_finish() {
        struct Nothing;
        impl Protocol for Nothing {
            type State = u32;
            type Message = u32;
            fn rounds(&self) -> usize {
                0
            }
            fn init(&self, node: &NodeInfo) -> u32 {
                node.degree() as u32
            }
            fn round(
                &self,
                _s: &mut u32,
                _n: &NodeInfo,
                _r: usize,
                _i: &mut [Option<u32>],
                _o: &mut [Option<u32>],
            ) {
                panic!("round must not run with rounds() == 0");
            }
            fn finish(&self, s: &mut u32, _n: &NodeInfo, inbox: &mut [Option<u32>]) {
                assert!(inbox.iter().all(Option::is_none));
                *s += 100;
            }
        }
        let net = chain(3);
        let result = run(&net, &Nothing);
        assert_eq!(result.stats.rounds, 0);
        assert!(result.states.iter().all(|s| *s >= 100));
    }

    #[test]
    fn payload_size_accounting_composes() {
        use crate::engine::Payload;
        assert_eq!(1.0f64.size_bytes(), 8);
        assert_eq!((1u32, 2.0f64).size_bytes(), 12);
        assert_eq!(vec![1.0f64, 2.0].size_bytes(), 8 + 16);
        assert_eq!(Some(3.0f64).size_bytes(), 9);
        assert_eq!(None::<f64>.size_bytes(), 1);
        assert_eq!(().size_bytes(), 0);
    }

    #[test]
    fn selective_port_messaging() {
        // A protocol that only speaks on port 0: message counts reflect
        // exactly the ports used.
        struct FirstPortOnly;
        impl Protocol for FirstPortOnly {
            type State = ();
            type Message = u32;
            fn rounds(&self) -> usize {
                1
            }
            fn init(&self, _n: &NodeInfo) {}
            fn round(
                &self,
                _s: &mut (),
                _n: &NodeInfo,
                _r: usize,
                _i: &mut [Option<u32>],
                outbox: &mut [Option<u32>],
            ) {
                if let Some(slot) = outbox.first_mut() {
                    *slot = Some(7);
                }
            }
            fn finish(&self, _s: &mut (), _n: &NodeInfo, _i: &mut [Option<u32>]) {}
        }
        let net = chain(4);
        let result = run(&net, &FirstPortOnly);
        let nodes_with_ports = (0..net.n_nodes() as u32)
            .filter(|&x| net.info(x).degree() > 0)
            .count() as u64;
        assert_eq!(result.stats.messages, nodes_with_ports);
    }
}
