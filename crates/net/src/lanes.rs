//! Chunked-lane folds over the arena's struct-of-arrays slices.
//!
//! The coefficient columns of [`crate::arena::ViewArena`] were laid out
//! as contiguous per-node `f64` slices precisely so the inner folds of
//! the evaluators (`min_i 1/a_iv` capacities, the safe baseline's
//! per-agent minima) can run over plain slices in fixed-width lanes
//! with **explicit accumulator splitting**: `LANES` independent partial
//! accumulators break the loop-carried `min` dependency chain, so the
//! out-of-order core overlaps the divides instead of serialising on one
//! accumulator.
//!
//! ## The reassociation boundary
//!
//! Splitting accumulators reorders the fold, which is only legal where
//! the result is **order-independent at the bit level**. The two fold
//! families in the hot path sit on opposite sides of that boundary:
//!
//! * **`min` folds reassociate freely.** Every value folded here is a
//!   reciprocal of a validated, strictly positive coefficient (or
//!   `+∞` for masked-out lanes), so there are no NaNs and no `±0.0`
//!   ties: the minimum of the multiset is a unique bit pattern no
//!   matter the association. These helpers are therefore used on paths
//!   whose outputs are asserted bit-identical to the scalar reference
//!   (`tests/flat_views.rs`, `safe::distributed_matches_closed_form`).
//! * **`+` folds do NOT reassociate.** Floating-point addition is not
//!   associative, and every sum in the `f±`/`t` evaluators feeds
//!   outputs that the test-suite pins bit-for-bit against the legacy
//!   recursive path — so those sums keep their original left-to-right
//!   order and are deliberately *not* given lane helpers. If a future
//!   PR wants vectorised sums it must either drop the bit-identity
//!   assertions or keep a scalar reference mode; see `specs/PERF.md`.

use mmlp_instance::NodeKind;

/// Number of independent `f64` accumulators used by the lane folds.
///
/// Four lanes cover one cache line of `f64`s and are enough to hide the
/// latency of the divide + `min` chain on current x86-64 and aarch64
/// cores; the `lane_width` bench (`crates/bench/benches/lanes.rs`)
/// records the measured sweep — widths 2–8 are within noise of each
/// other on long slices, while the hot callers here have short slices
/// (node degrees), where wider accumulators only add horizontal-combine
/// overhead.
pub const LANES: usize = 4;

/// Minimum of a slice with `W` split accumulators — the generic kernel
/// behind [`min_lanes`]; exposed so the lane-width bench can sweep `W`.
///
/// Returns `+∞` on an empty slice. Reassociation-safe only for inputs
/// without NaNs or `±0.0` ties (see the module docs); all callers fold
/// strictly positive finite values.
#[inline]
pub fn min_lanes_w<const W: usize>(values: &[f64]) -> f64 {
    let mut acc = [f64::INFINITY; W];
    let mut chunks = values.chunks_exact(W);
    for chunk in &mut chunks {
        for j in 0..W {
            acc[j] = acc[j].min(chunk[j]);
        }
    }
    for (j, &v) in chunks.remainder().iter().enumerate() {
        acc[j] = acc[j].min(v);
    }
    acc.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Minimum of a slice of strictly positive finite values, folded in
/// [`LANES`]-wide split accumulators. `+∞` on an empty slice.
#[inline]
pub fn min_lanes(values: &[f64]) -> f64 {
    min_lanes_w::<LANES>(values)
}

/// `min 1/coefs[p]` over the ports whose kind equals `want`, folded in
/// [`LANES`]-wide split accumulators with masked-out lanes contributing
/// `+∞` — the capacity fold `min_i 1/a_iv` of an agent's view node,
/// evaluated directly on the arena's parallel `port_kinds` / `coefs`
/// columns.
///
/// Bit-identical to the scalar filter-and-fold it replaces because the
/// reciprocals are strictly positive (coefficients are validated `> 0`)
/// and `min` over such a multiset is order-independent. Returns `+∞`
/// when no port matches.
#[inline]
pub fn min_recip_where(port_kinds: &[NodeKind], coefs: &[f64], want: NodeKind) -> f64 {
    debug_assert_eq!(port_kinds.len(), coefs.len());
    let n = coefs.len();
    let mut acc = [f64::INFINITY; LANES];
    let mut p = 0;
    while p + LANES <= n {
        for j in 0..LANES {
            let masked = if port_kinds[p + j] == want {
                1.0 / coefs[p + j]
            } else {
                f64::INFINITY
            };
            acc[j] = acc[j].min(masked);
        }
        p += LANES;
    }
    for j in 0..n - p {
        let masked = if port_kinds[p + j] == want {
            1.0 / coefs[p + j]
        } else {
            f64::INFINITY
        };
        acc[j] = acc[j].min(masked);
    }
    acc.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_min(values: &[f64]) -> f64 {
        values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn min_lanes_matches_scalar_fold_bitwise() {
        let mut values = Vec::new();
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for len in 0..67usize {
            values.clear();
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Strictly positive, well away from subnormals.
                values.push(1.0 + (state >> 11) as f64 / (1u64 << 53) as f64);
            }
            assert_eq!(
                min_lanes(&values).to_bits(),
                scalar_min(&values).to_bits(),
                "len {len}"
            );
            let w = scalar_min(&values);
            assert_eq!(min_lanes_w::<2>(&values).to_bits(), w.to_bits());
            assert_eq!(min_lanes_w::<8>(&values).to_bits(), w.to_bits());
        }
    }

    #[test]
    fn empty_slices_fold_to_infinity() {
        assert_eq!(min_lanes(&[]), f64::INFINITY);
        assert_eq!(
            min_recip_where(&[], &[], NodeKind::Constraint),
            f64::INFINITY
        );
    }

    #[test]
    fn min_recip_where_matches_filtered_scalar_fold() {
        use NodeKind::{Agent, Constraint, Objective};
        let kinds = [
            Constraint, Objective, Constraint, Agent, Constraint, Objective, Constraint,
        ];
        let coefs = [2.0, 10.0, 0.5, 3.0, 4.0, 0.1, 8.0];
        for want in [Constraint, Objective, Agent] {
            let reference = kinds
                .iter()
                .zip(&coefs)
                .filter(|(k, _)| **k == want)
                .map(|(_, a)| 1.0 / a)
                .fold(f64::INFINITY, f64::min);
            let lanes = min_recip_where(&kinds, &coefs, want);
            assert_eq!(lanes.to_bits(), reference.to_bits(), "{want:?}");
        }
    }

    #[test]
    fn no_matching_port_is_infinite() {
        let kinds = [NodeKind::Objective; 5];
        let coefs = [1.0; 5];
        assert_eq!(
            min_recip_where(&kinds, &coefs, NodeKind::Constraint),
            f64::INFINITY
        );
    }
}
