//! The communication network of an instance, with anonymous local inputs.

use mmlp_instance::{CommGraph, Instance, NodeKind};

/// What a node knows about one of its ports — and nothing more. No node
/// identifiers exist anywhere in this module's public surface: protocols
/// can only address "my port `p`".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PortInfo {
    /// The class of the node on the other end (an agent can tell its
    /// constraints from its objectives; rows see only agents).
    pub neighbor_kind: NodeKind,
    /// The coefficient on this edge, known **only to the agent side**
    /// (the paper's local input: agents know `a_iv`, `c_kv`; a constraint
    /// or objective knows only its neighbour set).
    pub coef: Option<f64>,
}

/// A node's complete local input.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeInfo {
    /// The node's own class.
    pub kind: NodeKind,
    /// One entry per port, in port order.
    pub ports: Vec<PortInfo>,
}

impl NodeInfo {
    /// Degree of the node.
    pub fn degree(&self) -> usize {
        self.ports.len()
    }
}

/// The simulated network: graph structure (used only by the engine for
/// message delivery — never exposed to protocols) plus per-node local
/// inputs.
#[derive(Clone, Debug)]
pub struct Network {
    graph: CommGraph,
    infos: Vec<NodeInfo>,
}

impl Network {
    /// Builds the network of an instance.
    pub fn new(inst: &Instance) -> Self {
        let graph = CommGraph::new(inst);
        let mut infos = Vec::with_capacity(graph.n_nodes());
        for flat in 0..graph.n_nodes() as u32 {
            let kind = graph.node(flat).kind();
            let ports = graph
                .neighbors(flat)
                .iter()
                .map(|adj| {
                    let neighbor_kind = graph.node(adj.to).kind();
                    let coef = if kind == NodeKind::Agent {
                        // Agents know the coefficient of each incident
                        // edge; recover it from the reciprocal port.
                        let n = graph.node(adj.to);
                        match n {
                            mmlp_instance::Node::Constraint(i) => {
                                Some(inst.constraint_row(i)[adj.port_at_to as usize].coef)
                            }
                            mmlp_instance::Node::Objective(k) => {
                                Some(inst.objective_row(k)[adj.port_at_to as usize].coef)
                            }
                            mmlp_instance::Node::Agent(_) => {
                                unreachable!("bipartite: agents have no agent neighbours")
                            }
                        }
                    } else {
                        None
                    };
                    PortInfo {
                        neighbor_kind,
                        coef,
                    }
                })
                .collect();
            infos.push(NodeInfo { kind, ports });
        }
        Network { graph, infos }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Number of agent nodes (flat indices `0..n_agents` are agents, so
    /// output collection can map agent outputs back to `AgentId`s).
    pub fn n_agents(&self) -> usize {
        self.graph.n_agents()
    }

    /// The local input of a node (by flat index; the index is engine-side
    /// bookkeeping, not visible to protocols).
    pub fn info(&self, flat: u32) -> &NodeInfo {
        &self.infos[flat as usize]
    }

    /// Replaces the agent-known coefficient on one port of an agent node,
    /// in place.
    ///
    /// This is the network half of a dynamic coefficient edit (§1.3): the
    /// topology, port numbering and every other local input are
    /// unchanged, so view re-gathering after the call sees exactly the
    /// network of the edited instance without an O(n) rebuild. Panics if
    /// `flat` is not an agent node or the port carried no coefficient
    /// (both would mean the caller's edit refers to a non-edge).
    pub fn set_agent_coef(&mut self, flat: u32, port: usize, coef: f64) {
        let info = &mut self.infos[flat as usize];
        assert_eq!(info.kind, NodeKind::Agent, "only agents know coefficients");
        let slot = &mut info.ports[port].coef;
        assert!(slot.is_some(), "port {port} carries no coefficient");
        *slot = Some(coef);
    }

    /// The underlying communication graph — engine-side bookkeeping for
    /// message delivery and for building flat views directly from the
    /// topology (`mmlp-core`'s view interner). Protocols never see it:
    /// they are limited to [`NodeInfo`].
    pub fn graph(&self) -> &CommGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::InstanceBuilder;

    fn path() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 2.0), (v1, 3.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v1, 5.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn agents_know_coefficients() {
        let net = Network::new(&path());
        // Agent v0: port 0 = constraint (coef 2.0), port 1 = objective (1.0).
        let info = net.info(0);
        assert_eq!(info.kind, NodeKind::Agent);
        assert_eq!(info.ports.len(), 2);
        assert_eq!(info.ports[0].neighbor_kind, NodeKind::Constraint);
        assert_eq!(info.ports[0].coef, Some(2.0));
        assert_eq!(info.ports[1].neighbor_kind, NodeKind::Objective);
        assert_eq!(info.ports[1].coef, Some(1.0));
    }

    #[test]
    fn rows_are_anonymous() {
        let net = Network::new(&path());
        // Constraint node (flat index 2): sees two agent ports, no coefs.
        let info = net.info(2);
        assert_eq!(info.kind, NodeKind::Constraint);
        assert_eq!(info.degree(), 2);
        for p in &info.ports {
            assert_eq!(p.neighbor_kind, NodeKind::Agent);
            assert_eq!(p.coef, None);
        }
    }

    #[test]
    fn network_size() {
        let net = Network::new(&path());
        assert_eq!(net.n_nodes(), 5);
        assert_eq!(net.n_agents(), 2);
    }
}
