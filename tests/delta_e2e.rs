//! End-to-end tests of the delta workload over real TCP sockets:
//! `PUT_DELTA` lineage registration, `SOLVE_DELTA` bit-identity
//! against from-scratch `SOLVE`s of the same revision, typed error
//! codes, the `SOLVE_DELTA`-namespace cache, and lineage replay across
//! a server restart on the same persistent store.

use maxmin_lp::instance::delta::{Delta, Edit, RowKind};
use maxmin_lp::instance::hash::instance_hash;
use maxmin_lp::instance::ids::ConstraintId;
use maxmin_lp::instance::{textfmt, Instance};
use maxmin_lp::serve::client::{stat, Client, ClientReply};
use maxmin_lp::serve::loadgen::{self, LoadConfig};
use maxmin_lp::serve::protocol::{ErrorCode, Op};
use maxmin_lp::serve::server::{ServeConfig, Server, ServerSummary};

fn spawn_server(cfg: ServeConfig) -> (String, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// The delta path serves special-form instances (that is what the
/// incremental solver repairs); `SOLVE` of the same revision is the
/// bit-identity oracle.
fn base_instance() -> Instance {
    let fam = maxmin_lp::gen::catalog();
    let fam = fam.iter().find(|f| f.name == "special-form").unwrap();
    fam.instance(18, 2)
}

/// A one-edit delta bumping constraint `row`'s first coefficient by
/// `factor`, pinned to `inst`'s content hash.
fn bump(inst: &Instance, row: u32, factor: f64) -> Delta {
    let e = inst.constraint_row(ConstraintId::new(row))[0];
    Delta::single(
        instance_hash(inst),
        Edit::SetCoef {
            row: RowKind::Constraint,
            row_id: row,
            agent: e.agent,
            coef: e.coef * factor,
        },
    )
}

#[test]
fn solve_delta_is_bit_identical_to_solve_of_the_revision() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    let base = base_instance();
    c.put(&textfmt::write_instance(&base)).unwrap().unwrap();

    let delta = bump(&base, 0, 1.5);
    let (base_hex, _delta_hex, new_hex) = c.put_delta(&delta.to_text()).unwrap().unwrap();
    assert_ne!(base_hex, new_hex);

    // The incremental body equals a from-scratch SOLVE of the new
    // revision, byte for byte — and a repeat is a cache hit with the
    // same bytes.
    let incr = c
        .solve_delta_hash(&new_hex, 3, 2)
        .unwrap()
        .into_ok()
        .unwrap();
    let scratch = c
        .run_hash(Op::Solve, &new_hex, 3, 2)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(incr.as_bytes(), scratch.as_bytes());
    let again = c
        .solve_delta_hash(&new_hex, 3, 2)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(incr.as_bytes(), again.as_bytes());

    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "delta_puts"), 1, "{stats:?}");
    assert_eq!(stat(&stats, "delta_solves_booted"), 1, "{stats:?}");
    assert!(stat(&stats, "delta_recomputed_x") > 0, "{stats:?}");
    assert_eq!(stat(&stats, "lineage_entries"), 1, "{stats:?}");
    assert_eq!(stat(&stats, "delta_solvers"), 1, "{stats:?}");

    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0);
    assert!(summary.cache_hits >= 1, "repeat SOLVE_DELTA must hit");
}

#[test]
fn inline_delta_registers_and_solves_in_one_round_trip() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    let base = base_instance();
    c.put(&textfmt::write_instance(&base)).unwrap().unwrap();

    // inline: carries the delta text itself; the revision is registered
    // (PUT_DELTA semantics) and solved in one request. A later solve by
    // hash of the same revision reuses the now-warm solver.
    let delta = bump(&base, 1, 0.75);
    let inline = c
        .solve_delta_inline(&delta.to_text(), 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let (_, _, new_hex) = c.put_delta(&delta.to_text()).unwrap().unwrap();
    let by_hash = c
        .run_hash(Op::Solve, &new_hex, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(inline.as_bytes(), by_hash.as_bytes());

    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "delta_puts"), 2, "inline + explicit");
    assert_eq!(stat(&stats, "lineage_entries"), 1, "same revision, deduped");

    c.shutdown().unwrap();
    assert_eq!(handle.join().unwrap().errors, 0);
}

#[test]
fn chained_edits_advance_one_parked_solver() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    let base = base_instance();
    c.put(&textfmt::write_instance(&base)).unwrap().unwrap();

    // v0 -> v1 -> v2 -> v3, solving after each edit: the first solve
    // boots a solver, the rest advance it in place.
    let mut cur = base.clone();
    let mut last_hex = String::new();
    for (i, factor) in [1.5, 2.0, 0.5].into_iter().enumerate() {
        let delta = bump(&cur, i as u32, factor);
        cur = delta.apply(&cur).unwrap();
        let (_, _, new_hex) = c.put_delta(&delta.to_text()).unwrap().unwrap();
        let incr = c
            .solve_delta_hash(&new_hex, 3, 1)
            .unwrap()
            .into_ok()
            .unwrap();
        let scratch = c
            .run_hash(Op::Solve, &new_hex, 3, 1)
            .unwrap()
            .into_ok()
            .unwrap();
        assert_eq!(incr.as_bytes(), scratch.as_bytes(), "edit {i}");
        last_hex = new_hex;
    }
    assert_eq!(
        maxmin_lp::instance::hash::hash_hex(instance_hash(&cur)),
        last_hex,
        "client-side replay agrees with the server's lineage"
    );

    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "delta_solves_booted"), 1, "{stats:?}");
    assert_eq!(stat(&stats, "delta_solves_advanced"), 2, "{stats:?}");
    assert_eq!(
        stat(&stats, "delta_solvers"),
        1,
        "one solver walks the chain"
    );
    assert_eq!(stat(&stats, "lineage_entries"), 3, "{stats:?}");

    c.shutdown().unwrap();
    assert_eq!(handle.join().unwrap().errors, 0);
}

#[test]
fn delta_errors_are_typed_and_nonfatal() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();

    // Unregistered revision.
    match c.solve_delta_hash("0123456789abcdef", 3, 1).unwrap() {
        ClientReply::Err(ErrorCode::NoBase, _) => {}
        other => panic!("expected NOBASE, got {other:?}"),
    }
    // Delta against a base this node never saw.
    let orphan = "mmlpdelta 1\nbase 00000000deadbeef\nset c 0 0:1.5\n";
    match c.put_delta(orphan).unwrap() {
        Err(msg) => assert!(msg.starts_with("NOBASE"), "{msg}"),
        other => panic!("expected NOBASE, got {other:?}"),
    }
    // Malformed delta text.
    match c.request("PUT_DELTA 4", Some(b"junk")).unwrap() {
        ClientReply::Err(ErrorCode::BadDelta, _) => {}
        other => panic!("expected BADDELTA, got {other:?}"),
    }
    // Valid base, edit that breaks special form: SOLVE_DELTA refuses
    // with BADDELTA (the delta subsystem serves special-form instances;
    // the revision itself stays solvable via plain SOLVE).
    let base = base_instance();
    c.put(&textfmt::write_instance(&base)).unwrap().unwrap();
    let row0 = base.constraint_row(ConstraintId::new(0));
    let outsider = base
        .agents()
        .find(|v| row0.iter().all(|e| e.agent != *v))
        .expect("an agent outside constraint 0");
    let breaking = Delta::single(
        instance_hash(&base),
        Edit::AddEdge {
            row: RowKind::Constraint,
            row_id: 0,
            agent: outsider,
            coef: 1.0,
        },
    );
    let (_, _, new_hex) = c.put_delta(&breaking.to_text()).unwrap().unwrap();
    match c.solve_delta_hash(&new_hex, 3, 1).unwrap() {
        ClientReply::Err(ErrorCode::BadDelta, msg) => {
            assert!(msg.contains("special form"), "should name the cause: {msg}")
        }
        other => panic!("expected BADDELTA, got {other:?}"),
    }
    assert!(c.run_hash(Op::Solve, &new_hex, 3, 1).unwrap().is_ok());

    // The connection survived every error.
    assert_eq!(
        c.request("PING", None).unwrap().into_ok().unwrap(),
        "pong\n"
    );
    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn loadgen_mutate_mode_probes_bit_identity() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let cfg = LoadConfig {
        addr,
        clients: 2,
        requests: 12,
        big_r: 3,
        instance_text: textfmt::write_instance(&base_instance()),
        shutdown_after: true,
        mutate: true,
        seed: 7,
        ..LoadConfig::default()
    };
    let report = loadgen::run_loadgen(&cfg).expect("loadgen run");
    assert_eq!(report.sent, 12);
    assert_eq!(report.ok, 12, "first error: {:?}", report.first_error);
    assert_eq!(report.errors, 0);
    assert_eq!(report.delta_checks, 12, "every step must be probed");
    assert_eq!(report.delta_mismatches, 0);
    let rendered = loadgen::render_report(&cfg, &report);
    assert!(rendered.contains("mode mutate"), "{rendered}");
    assert!(rendered.contains("delta_checks 12"), "{rendered}");
    assert_eq!(handle.join().unwrap().errors, 0);
}

#[test]
fn restart_replays_lineage_from_segments() {
    let dir = std::env::temp_dir().join(format!(
        "mmlp-delta-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let base = base_instance();
    let d1 = bump(&base, 0, 1.5);
    let v1 = d1.apply(&base).unwrap();
    let d2 = bump(&v1, 1, 2.0);

    let store_cfg = || ServeConfig {
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // First life: register a two-edit chain and solve its head.
    let head_hex;
    let before;
    {
        let (addr, handle) = spawn_server(store_cfg());
        let mut c = Client::connect(&addr).unwrap();
        c.put(&textfmt::write_instance(&base)).unwrap().unwrap();
        c.put_delta(&d1.to_text()).unwrap().unwrap();
        let (_, _, new_hex) = c.put_delta(&d2.to_text()).unwrap().unwrap();
        head_hex = new_hex;
        before = c
            .solve_delta_hash(&head_hex, 3, 1)
            .unwrap()
            .into_ok()
            .unwrap();
        c.shutdown().unwrap();
        assert_eq!(handle.join().unwrap().errors, 0);
    }

    // Second life on the same segments: the lineage graph is replayed
    // at warm start. THREADS=2 keys past the persisted body, forcing a
    // real boot-and-replay from the stored base — the chain is
    // re-derived from segments, not from memory — and the result is
    // still bit-identical (thread count never changes the bytes).
    let (addr, handle) = spawn_server(store_cfg());
    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "warm_lineage"), 2, "{stats:?}");
    assert_eq!(stat(&stats, "lineage_entries"), 2, "{stats:?}");
    let after = c
        .solve_delta_hash(&head_hex, 3, 2)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(after.as_bytes(), before.as_bytes());
    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "delta_solves_booted"), 1, "{stats:?}");
    assert_eq!(stat(&stats, "delta_replayed"), 2, "whole chain replayed");
    // The first life's cached body also survives, as a warm hit under
    // SOLVE_DELTA's own namespace.
    let hit = c
        .solve_delta_hash(&head_hex, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(hit.as_bytes(), before.as_bytes());
    let stats = c.stats().unwrap();
    assert!(
        stat(&stats, "cache_hits") >= 1,
        "restarted cache must hit: {stats:?}"
    );

    c.shutdown().unwrap();
    assert_eq!(handle.join().unwrap().errors, 0);
    std::fs::remove_dir_all(&dir).ok();
}
