//! End-to-end tests of the solver service over real TCP sockets:
//! concurrent clients, cache-hit bit-identity against cold solves,
//! deterministic `BUSY` backpressure under a saturated queue, per-
//! request timeouts, and clean `SHUTDOWN` drain of in-flight work.

use maxmin_lp::instance::textfmt;
use maxmin_lp::serve::client::{stat, Client, ClientReply};
use maxmin_lp::serve::protocol::{ErrorCode, Op};
use maxmin_lp::serve::server::{ServeConfig, Server, ServerSummary};
use std::time::Duration;

/// Binds on an ephemeral port and runs the server on a background
/// thread; returns the address and the join handle for the summary.
fn spawn_server(cfg: ServeConfig) -> (String, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn instance_text() -> String {
    let fam = maxmin_lp::gen::catalog();
    let fam = fam.iter().find(|f| f.name == "bandwidth").unwrap();
    textfmt::write_instance(&fam.instance(20, 3))
}

#[test]
fn cache_hits_are_bit_identical_to_cold_solves() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    let text = instance_text();
    let hash = c.put(&text).unwrap().unwrap();

    for op in [Op::Solve, Op::Optimum, Op::Safe, Op::Info] {
        let cold = c.run_hash(op, &hash, 3, 1).unwrap().into_ok().unwrap();
        let warm = c.run_hash(op, &hash, 3, 1).unwrap().into_ok().unwrap();
        assert_eq!(
            cold.as_bytes(),
            warm.as_bytes(),
            "{op:?}: warm hit differs from cold solve"
        );
        // Inline requests for the same content share the cache entry
        // and the bytes.
        let inline = c.run_inline(op, &text, 3, 1).unwrap().into_ok().unwrap();
        assert_eq!(cold.as_bytes(), inline.as_bytes(), "{op:?} inline");
    }

    let stats = c.stats().unwrap();
    assert!(stat(&stats, "cache_hits") >= 8, "{stats:?}");
    assert_eq!(stat(&stats, "cache_misses"), 4, "one cold solve per op");
    assert_eq!(stat(&stats, "store_entries"), 1, "content-addressed dedupe");

    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0);
    assert!(summary.cache_hits >= 8);
}

#[test]
fn eight_concurrent_clients_get_identical_bytes() {
    let (addr, handle) = spawn_server(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let text = instance_text();

    let bodies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for client_id in 0..8 {
            let addr = addr.clone();
            let text = text.clone();
            joins.push(scope.spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                // Half the clients upload first; the others solve
                // inline. All must converge on the same cache line.
                let hash = if client_id % 2 == 0 {
                    Some(c.put(&text).unwrap().unwrap())
                } else {
                    None
                };
                let mut out = Vec::new();
                for _ in 0..12 {
                    let reply = match &hash {
                        Some(h) => c.run_hash(Op::Solve, h, 3, 1).unwrap(),
                        None => c.run_inline(Op::Solve, &text, 3, 1).unwrap(),
                    };
                    out.push(reply.into_ok().expect("solve failed"));
                }
                out
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let first = &bodies[0][0];
    assert!(first.contains("utility "), "{first}");
    for (i, per_client) in bodies.iter().enumerate() {
        assert_eq!(per_client.len(), 12);
        for b in per_client {
            assert_eq!(b, first, "client {i} saw different bytes");
        }
    }

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.busy, 0);
    // 96 solves total; at worst each of the 8 clients' *first* solve
    // races the others into a cold miss, so at least 88 must hit.
    assert!(summary.cache_hits >= 88, "{summary:?}");
}

#[test]
fn saturated_queue_replies_busy_and_recovers() {
    // One worker, queue of one: occupy both slots deterministically,
    // then the next request must bounce with BUSY.
    let (addr, handle) = spawn_server(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });

    let mut observer = Client::connect(&addr).unwrap();
    let sleeper = |addr: &str| {
        let addr = addr.to_string();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request("SLEEP 600", None).unwrap()
        })
    };

    // Fill the worker, wait until it is actually executing.
    let s1 = sleeper(&addr);
    wait_until(&mut observer, |st| stat(st, "in_flight") == 1);
    // Fill the queue.
    let s2 = sleeper(&addr);
    wait_until(&mut observer, |st| stat(st, "queue_depth") == 1);

    // Saturated: a solve must bounce, not block or queue unboundedly.
    let mut c = Client::connect(&addr).unwrap();
    let text = instance_text();
    let reply = c.run_inline(Op::Solve, &text, 3, 1).unwrap();
    match reply {
        ClientReply::Err(ErrorCode::Busy, _) => {}
        other => panic!("expected BUSY, got {other:?}"),
    }

    // Both sleepers still complete; the server recovers.
    assert!(s1.join().unwrap().is_ok());
    assert!(s2.join().unwrap().is_ok());
    let ok = c.run_inline(Op::Solve, &text, 3, 1).unwrap();
    assert!(ok.is_ok(), "server must serve again after the spike");

    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert!(summary.busy >= 1, "{summary:?}");
    assert_eq!(summary.errors, 0, "BUSY is backpressure, not an error");
}

#[test]
fn per_request_timeout_kills_slow_work_not_the_server() {
    let (addr, handle) = spawn_server(ServeConfig {
        workers: 2,
        timeout: Some(Duration::from_millis(80)),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(&addr).unwrap();
    match c.request("SLEEP 5000", None).unwrap() {
        ClientReply::Err(ErrorCode::Timeout, _) => {}
        other => panic!("expected TIMEOUT, got {other:?}"),
    }
    // The same connection keeps working.
    let text = instance_text();
    assert!(c.run_inline(Op::Info, &text, 3, 1).unwrap().is_ok());
    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.timeouts, 1);
}

#[test]
fn shutdown_drains_in_flight_work() {
    let (addr, handle) = spawn_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });

    // Park a request on the single worker...
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request("SLEEP 400", None).unwrap()
        })
    };
    let mut observer = Client::connect(&addr).unwrap();
    wait_until(&mut observer, |st| stat(st, "in_flight") == 1);

    // ...then shut down while it is still running.
    let mut c = Client::connect(&addr).unwrap();
    let bye = c.shutdown().unwrap();
    assert!(bye.is_ok(), "{bye:?}");

    // The in-flight request still completes (drain, not abort)...
    let slow_reply = slow.join().unwrap();
    assert_eq!(slow_reply.into_ok().unwrap(), "slept 400\n");

    // ...and the server then exits cleanly.
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0);

    // New connections are refused once it is gone.
    std::thread::sleep(Duration::from_millis(50));
    assert!(Client::connect(&addr).is_err());
}

#[test]
fn protocol_errors_are_typed_and_nonfatal() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();

    // Unknown verb.
    match c.request("FROBNICATE", None).unwrap() {
        ClientReply::Err(ErrorCode::BadReq, _) => {}
        other => panic!("{other:?}"),
    }
    // Unknown hash.
    match c.run_hash(Op::Solve, "0123456789abcdef", 3, 1).unwrap() {
        ClientReply::Err(ErrorCode::NotFound, _) => {}
        other => panic!("{other:?}"),
    }
    // Garbage body.
    match c.run_inline(Op::Solve, "not an instance", 3, 1).unwrap() {
        ClientReply::Err(ErrorCode::BadReq, _) => {}
        other => panic!("{other:?}"),
    }
    // The connection survives all of it.
    assert_eq!(
        c.request("PING", None).unwrap().into_ok().unwrap(),
        "pong\n"
    );

    // An absurd THREADS= is clamped server-side, not obeyed: the reply
    // still arrives and matches the single-threaded bytes.
    let text = instance_text();
    let hash = c.put(&text).unwrap().unwrap();
    let normal = c
        .run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let huge = c
        .request(&format!("SOLVE hash:{hash} R=3 THREADS=999999"), None)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(normal, huge);

    // An oversize body declaration is refused without reading the
    // body, and the (now unsynchronised) connection is closed.
    let mut big = Client::connect(&addr).unwrap();
    match big.request("PUT 99999999999", None).unwrap() {
        ClientReply::Err(ErrorCode::BadReq, msg) => assert!(msg.contains("exceeds"), "{msg}"),
        other => panic!("{other:?}"),
    }
    assert!(
        big.request("PING", None).is_err(),
        "connection must be closed after an unsynchronising request"
    );

    c.shutdown().unwrap();
    handle.join().unwrap();
}

/// Polls `STATS` until `pred` holds (5 s cap — the conditions are
/// server-local state transitions, not timing races).
fn wait_until(c: &mut Client, pred: impl Fn(&[(String, u64)]) -> bool) {
    for _ in 0..500 {
        let stats = c.stats().unwrap();
        if pred(&stats) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("condition not reached within 5s");
}
