//! Property test: the instance text format round-trips **exactly**
//! (structure, port order and float bits) for instances drawn from
//! every family in the generator catalogue — the invariant campaign
//! resumability leans on, since job identity assumes a family/size/seed
//! triple regenerates the identical instance a serialised copy would.

use maxmin_lp::gen::catalog;
use maxmin_lp::instance::textfmt::{parse_instance, write_instance};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every catalogue family: `parse(write(i))` reproduces `i`
    /// exactly, and re-serialising is byte-identical (which pins the
    /// float bits, since Rust's shortest-round-trip formatting is
    /// injective on f64).
    #[test]
    fn every_catalog_family_round_trips_exactly(size in 8usize..48, seed in 0u64..1_000) {
        for fam in catalog() {
            let inst = fam.instance(size, seed);
            let text = write_instance(&inst);
            let back = parse_instance(&text)
                .unwrap_or_else(|e| panic!("family {}: {e}", fam.name));
            prop_assert_eq!(back.n_agents(), inst.n_agents());
            prop_assert_eq!(back.n_constraints(), inst.n_constraints());
            prop_assert_eq!(back.n_objectives(), inst.n_objectives());
            for i in inst.constraints() {
                prop_assert_eq!(back.constraint_row(i), inst.constraint_row(i));
            }
            for k in inst.objectives() {
                prop_assert_eq!(back.objective_row(k), inst.objective_row(k));
            }
            prop_assert_eq!(write_instance(&back), text.clone(), "family {}", fam.name);

            // Surface-syntax hardening: the same file with CRLF line
            // endings and trailing whitespace must parse to the same
            // canonical form (hence the same content hash).
            let crlf = text.replace('\n', "\r\n");
            let back = parse_instance(&crlf)
                .unwrap_or_else(|e| panic!("family {} (crlf): {e}", fam.name));
            prop_assert_eq!(write_instance(&back), text.clone(), "family {} crlf", fam.name);

            let padded = text.replace('\n', " \t\r\n");
            let back = parse_instance(&padded)
                .unwrap_or_else(|e| panic!("family {} (padded): {e}", fam.name));
            prop_assert_eq!(
                write_instance(&back),
                text.clone(),
                "family {} trailing-whitespace",
                fam.name
            );
        }
    }
}
