//! Cross-validation of the entire numeric stack against the
//! tolerance-free rational simplex, on exactly-representable instances.

use maxmin_lp::core::tree_bound::{Scratch, TreeBound};
use maxmin_lp::core::SpecialForm;
use maxmin_lp::gen::lower_bound::{regular_gadget, tree_gadget};
use maxmin_lp::instance::AgentId;
use maxmin_lp::lp::exact::{exact_maxmin, ExactOutcome};
use maxmin_lp::lp::maxmin::certify_optimum;
use maxmin_lp::lp::{solve_maxmin, SimplexOptions};

fn exact_omega(inst: &maxmin_lp::instance::Instance) -> f64 {
    match exact_maxmin(inst, 1) {
        ExactOutcome::Optimal { objective, .. } => objective.to_f64(),
        other => panic!("expected optimal, got {other:?}"),
    }
}

#[test]
fn f64_simplex_matches_exact_on_gadgets() {
    for (d, di, n) in [(3, 2, 8), (4, 2, 6), (3, 3, 9)] {
        let (inst, _) = regular_gadget(n, d, di, 4, 1);
        let exact = exact_omega(&inst);
        let float = solve_maxmin(&inst).unwrap().omega;
        assert!(
            (exact - float).abs() < 1e-8,
            "d={d} ΔI={di}: exact {exact} vs f64 {float}"
        );
    }
}

#[test]
fn tree_bound_bisection_matches_exact_lp_of_materialized_tree() {
    // t_u (bisection over f±) vs the exact rational optimum of the
    // explicitly materialised A_u — a tolerance-free Lemma 3 check.
    let (inst, _) = regular_gadget(8, 3, 2, 4, 3);
    let sf = SpecialForm::new(inst).unwrap();
    let tb = TreeBound::new(&sf, 3);
    let mut sc = Scratch::default();
    for u in [0u32, 5, 11] {
        let u = AgentId::new(u);
        let (tree, _) = tb.materialize(u);
        let exact = exact_omega(&tree);
        let t = tb.t(u, &mut sc);
        assert!(
            (t - exact).abs() < 1e-9,
            "agent {u}: bisection {t} vs exact {exact}"
        );
    }
}

#[test]
fn dual_certificates_match_exact_optima() {
    let (inst, _) = regular_gadget(10, 3, 2, 4, 8);
    let exact = exact_omega(&inst);
    let (opt, cert) = certify_optimum(&inst, &SimplexOptions::default()).unwrap();
    assert!(cert.residual < 1e-7, "certificate re-verifies");
    assert!(
        (cert.bound - exact).abs() < 1e-8,
        "dual bound = exact optimum"
    );
    assert!((opt.omega - exact).abs() < 1e-8);
}

#[test]
fn tree_gadget_optima_are_certified_exactly() {
    // Depth-1 and depth-2 trees have small rational optima; record them
    // and pin the f64 path against them.
    for depth in [1usize, 2] {
        let (tree, witness) = tree_gadget(3, 2, depth);
        let exact = exact_omega(&tree);
        assert!(exact >= 2.0 - 1e-12, "tree optimum ≥ d−1");
        assert!(witness.utility(&tree) <= exact + 1e-12);
        let float = solve_maxmin(&tree).unwrap().omega;
        assert!((float - exact).abs() < 1e-8);
    }
}
