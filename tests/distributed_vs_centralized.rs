//! The message-passing protocol and the centralized reference engine
//! must agree bit-for-bit — including through the §4 transformation
//! pipeline on general instances.

use maxmin_lp::core::distributed::{rounds_needed, solve_distributed};
use maxmin_lp::core::smoothing::solve_special;
use maxmin_lp::core::transform::to_special_form;
use maxmin_lp::core::SpecialForm;
use maxmin_lp::gen::random::{random_general, RandomConfig};

#[test]
fn general_instances_through_the_pipeline_agree() {
    for seed in 0..3 {
        let inst = random_general(
            &RandomConfig {
                n_agents: 16,
                n_constraints: 12,
                n_objectives: 9,
                ..RandomConfig::default()
            },
            seed,
        );
        let transformed = to_special_form(&inst);
        let sf = SpecialForm::new(transformed.instance.clone()).unwrap();
        for big_r in [2, 3] {
            let central = solve_special(&sf, big_r, 1);
            let dist = solve_distributed(&sf, big_r);
            assert_eq!(dist.stats.rounds, rounds_needed(big_r));
            for v in 0..sf.n_agents() {
                assert_eq!(
                    dist.solution.as_slice()[v].to_bits(),
                    central.x.as_slice()[v].to_bits(),
                    "seed {seed} R {big_r} agent {v}"
                );
            }
            // The back-mapped distributed output is feasible on the
            // original instance, like the centralized one.
            let mapped = transformed.map_back(&dist.solution);
            assert!(mapped.is_feasible(&inst, 1e-7));
        }
    }
}

#[test]
fn parallel_engine_matches_sequential_on_the_protocol() {
    use maxmin_lp::core::distributed::DistMaxMin;
    use maxmin_lp::gen::special::{random_special_form, SpecialFormConfig};
    use maxmin_lp::net::{engine, Network};

    let inst = random_special_form(
        &SpecialFormConfig {
            n_objectives: 60,
            extra_constraints: 30,
            ..SpecialFormConfig::default()
        },
        9,
    );
    let sf = SpecialForm::new(inst).unwrap();
    let net = Network::new(sf.instance());
    let protocol = DistMaxMin::new(3);
    let seq = engine::run(&net, &protocol);
    let par = engine::run_parallel(&net, &protocol, 4);
    assert_eq!(seq.stats, par.stats);
    for (a, b) in seq.states.iter().zip(&par.states) {
        match (a.x, b.x) {
            (Some(xa), Some(xb)) => assert_eq!(xa.to_bits(), xb.to_bits()),
            (None, None) => {}
            _ => panic!("output presence mismatch"),
        }
    }
}
