//! End-to-end tests of the observability layer (`mmlp-obs`):
//!
//! * the `METRICS` wire op returns well-formed Prometheus text whose
//!   counters are monotone across requests,
//! * solve traces land in the server's ring and keep the phase-sum ≤
//!   span-total invariant,
//! * the overhead guard: the traced flat solver is **bit-identical** to
//!   the untraced one across the whole generator catalogue (tracing may
//!   cost nanoseconds, never ULPs).

use maxmin_lp::core::distributed::{solve_special_flat, solve_special_flat_traced};
use maxmin_lp::core::transform::to_special_form;
use maxmin_lp::core::SpecialForm;
use maxmin_lp::gen::catalog;
use maxmin_lp::instance::textfmt;
use maxmin_lp::serve::client::Client;
use maxmin_lp::serve::protocol::Op;
use maxmin_lp::serve::server::{ServeConfig, Server, ServerSummary};
use std::collections::BTreeMap;

fn spawn_server() -> (String, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn instance_text() -> String {
    let fams = catalog();
    let fam = fams.iter().find(|f| f.name == "bandwidth").unwrap();
    textfmt::write_instance(&fam.instance(20, 3))
}

/// Minimal Prometheus text-format parser/validator. Returns the sample
/// map `name{labels} -> value` and panics on any line that is neither a
/// `# HELP`/`# TYPE` comment nor a well-formed sample.
fn parse_prometheus(body: &str) -> BTreeMap<String, f64> {
    let mut samples = BTreeMap::new();
    let mut helped: Vec<&str> = Vec::new();
    let mut typed: Vec<&str> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap();
            let name = parts.next().unwrap_or_default();
            assert!(!name.is_empty(), "comment without a metric name: {line:?}");
            match kind {
                "HELP" => {
                    assert!(
                        parts.next().is_some_and(|h| !h.is_empty()),
                        "HELP without text: {line:?}"
                    );
                    helped.push(name);
                }
                "TYPE" => {
                    let t = parts.next().unwrap_or_default();
                    assert!(
                        matches!(t, "counter" | "gauge" | "histogram"),
                        "unknown TYPE {t:?} in {line:?}"
                    );
                    typed.push(name);
                }
                // Latency exemplar: the trace id of the largest
                // observation since the last scrape.
                "EXEMPLAR" => {
                    let rest = parts.next().unwrap_or_default();
                    assert!(
                        rest.contains("trace_id=\"") && rest.contains("value="),
                        "malformed EXEMPLAR: {line:?}"
                    );
                }
                other => panic!("unknown comment kind {other:?} in {line:?}"),
            }
            continue;
        }
        // Sample: `name{labels} value` or `name value`.
        let (key, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
        let name = key.split('{').next().unwrap();
        let mut base = name;
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stripped) = name.strip_suffix(suffix) {
                if typed.contains(&stripped) {
                    base = stripped;
                }
            }
        }
        assert!(
            !base.is_empty()
                && base
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                && !base.starts_with(|c: char| c.is_ascii_digit()),
            "invalid metric name in {line:?}"
        );
        assert!(
            helped.contains(&base) && typed.contains(&base),
            "sample {key:?} missing HELP/TYPE for {base:?}"
        );
        let prev = samples.insert(key.to_string(), value);
        assert!(prev.is_none(), "duplicate sample {key:?}");
    }
    samples
}

#[test]
fn metrics_op_is_valid_prometheus_and_monotone_across_requests() {
    let (addr, handle) = spawn_server();
    let mut c = Client::connect(&addr).unwrap();

    let before = parse_prometheus(&c.metrics().unwrap());
    assert!(
        before.contains_key("mmlp_serve_requests_total"),
        "request counter missing: {:?}",
        before.keys().take(8).collect::<Vec<_>>()
    );

    let text = instance_text();
    let hash = c.put(&text).unwrap().unwrap();
    let cold = c
        .run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let warm = c
        .run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(cold.as_bytes(), warm.as_bytes());

    let after = parse_prometheus(&c.metrics().unwrap());

    // Every counter-ish sample present in the first scrape must be
    // monotone non-decreasing in the second.
    for (key, &v0) in &before {
        let counterish = key.split('{').next().unwrap().ends_with("_total")
            || key.contains("_bucket{")
            || key.split('{').next().unwrap().ends_with("_count")
            || key.split('{').next().unwrap().ends_with("_sum");
        if !counterish {
            continue;
        }
        let v1 = *after
            .get(key)
            .unwrap_or_else(|| panic!("{key:?} disappeared between scrapes"));
        assert!(v1 >= v0, "{key:?} went backwards: {v0} -> {v1}");
    }

    // The required coverage: request latency histogram, per-op cache
    // hit/miss, solver phase timings, memo hit rate inputs.
    assert!(after["mmlp_serve_requests_total"] >= 5.0, "{after:?}");
    assert!(after["mmlp_serve_request_latency_us_count"] >= 4.0);
    assert!(after["mmlp_serve_queue_wait_us_count"] >= 1.0);
    assert!(after["mmlp_serve_execute_us_count"] >= 1.0);
    assert_eq!(after["mmlp_serve_cache_misses_total{op=\"solve\"}"], 1.0);
    assert!(after["mmlp_serve_cache_hits_total{op=\"solve\"}"] >= 1.0);
    let phase_sum: f64 = ["gather", "t_eval", "flood", "g"]
        .iter()
        .map(|p| after[&format!("mmlp_solver_phase_ns_total{{phase=\"{p}\"}}")])
        .sum();
    assert!(phase_sum > 0.0, "solver phase timings missing");
    let memo: f64 = ["hit", "miss", "skip"]
        .iter()
        .map(|r| after[&format!("mmlp_solver_memo_lookups_total{{result=\"{r}\"}}")])
        .sum();
    assert!(memo > 0.0, "memo telemetry missing");
    assert!(after["mmlp_solver_flat_solves_total"] >= 1.0);
    assert!(after["mmlp_serve_uptime_ms"] >= before["mmlp_serve_uptime_ms"]);

    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    // The cold solve left a trace in the ring; phase durations are
    // disjoint intervals inside the solve, so their sum never exceeds
    // the span total.
    assert!(!summary.slowest.is_empty(), "trace ring stayed empty");
    for tr in &summary.slowest {
        assert!(tr.label.contains("solve"), "{:?}", tr.label);
        assert!(tr.total_ns > 0);
        assert!(
            tr.phase_sum_ns() <= tr.total_ns,
            "phase sum {} exceeds span total {}",
            tr.phase_sum_ns(),
            tr.total_ns
        );
    }
}

/// The overhead contract's correctness half: turning tracing on must
/// not change a single output bit — catalogue-wide, across thread
/// counts. (The ≤3% wall-clock half lives in `benches/obs_overhead.rs`
/// and is gated by `trajectory_gate` on `BENCH_core.json`.)
#[test]
fn traced_flat_solve_is_bit_identical_to_untraced_catalog_wide() {
    for fam in catalog() {
        let inst = fam.instance(16, 7);
        let transformed = to_special_form(&inst);
        let sf = SpecialForm::new(transformed.instance.clone()).unwrap();
        for threads in [1, 2] {
            let (plain, plain_stats) = solve_special_flat(&sf, 3, threads);
            let (traced, traced_stats, trace) = solve_special_flat_traced(&sf, 3, threads);
            let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(plain.x.as_slice()),
                bits(traced.x.as_slice()),
                "{}: x diverged under tracing",
                fam.name
            );
            assert_eq!(bits(&plain.t), bits(&traced.t), "{}: t", fam.name);
            assert_eq!(bits(&plain.s), bits(&traced.s), "{}: s", fam.name);
            assert_eq!(plain_stats, traced_stats, "{}: accounting", fam.name);
            // And the trace itself is coherent: real wall times whose
            // per-phase sum stays inside the whole-solve span.
            assert!(trace.total_ns > 0, "{}", fam.name);
            let phases = trace.gather_ns + trace.t_eval_ns + trace.flood_ns + trace.g_ns;
            assert!(phases > 0 && phases <= trace.total_ns, "{}", fam.name);
            assert!(
                trace.batch.memo_hits + trace.batch.memo_misses + trace.batch.memo_skips > 0,
                "{}: memo telemetry empty",
                fam.name
            );
        }
    }
}
