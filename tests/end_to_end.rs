//! End-to-end integration: every workload family → transform → local
//! algorithm → back-map, checked for feasibility and Theorem 1's ratio
//! guarantee against the independent simplex optimum.

use maxmin_lp::core::solver::LocalSolver;
use maxmin_lp::gen::catalog;
use maxmin_lp::instance::{validate, DegreeStats};
use maxmin_lp::lp::solve_maxmin;

#[test]
fn every_family_is_solved_within_the_guarantee() {
    for fam in catalog() {
        for seed in 0..3 {
            let inst = fam.instance(36, seed);
            validate::check(&inst).unwrap_or_else(|e| panic!("{} seed {seed}: {e}", fam.name));
            let stats = DegreeStats::of(&inst);
            let opt = solve_maxmin(&inst)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", fam.name))
                .omega;
            for big_r in [2, 3] {
                let solver = LocalSolver::new(big_r);
                let out = solver.solve(&inst);
                assert!(
                    out.solution.is_feasible(&inst, 1e-7),
                    "{} seed {seed} R {big_r}: infeasible output",
                    fam.name
                );
                let utility = out.solution.utility(&inst);
                assert!(utility > 0.0, "{} seed {seed}: trivial output", fam.name);
                let guarantee = solver.guarantee(stats.delta_i, stats.delta_k);
                assert!(
                    utility * guarantee >= opt - 1e-6,
                    "{} seed {seed} R {big_r}: ratio {:.4} > guarantee {guarantee:.4}",
                    fam.name,
                    opt / utility
                );
            }
        }
    }
}

#[test]
fn the_certificate_upper_bounds_the_optimum() {
    for fam in catalog() {
        let inst = fam.instance(30, 1);
        let opt = solve_maxmin(&inst).unwrap().omega;
        let out = LocalSolver::new(3).solve(&inst);
        assert!(
            out.optimum_upper_bound() >= opt - 1e-6,
            "{}: certificate {:.5} below optimum {opt:.5}",
            fam.name,
            out.optimum_upper_bound()
        );
    }
}

#[test]
fn epsilon_interface_reaches_threshold_plus_epsilon() {
    // Theorem 1 constructively: for a concrete ε, choosing R via
    // r_for_epsilon yields ratio ≤ threshold + ε (we verify the
    // guarantee; the measured ratio is far below it).
    let fam = &catalog()[6]; // bandwidth (ΔI = 3, ΔK = 2 → threshold 1.5)
    let inst = fam.instance(40, 0);
    let stats = DegreeStats::of(&inst);
    let eps = 0.5;
    let solver = LocalSolver::for_epsilon(&inst, eps);
    let threshold = maxmin_lp::core::ratio::threshold(stats.delta_i, stats.delta_k);
    assert!(solver.guarantee(stats.delta_i, stats.delta_k) <= threshold + eps + 1e-9);
    let opt = solve_maxmin(&inst).unwrap().omega;
    let out = solver.solve(&inst);
    assert!(out.solution.utility(&inst) * (threshold + eps) >= opt - 1e-6);
}
