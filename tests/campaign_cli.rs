//! End-to-end tests of `maxmin-lp campaign run|report|status`: a full
//! grid campaign through the real binary, the Theorem 1 sanity bound on
//! every record, and kill/resume semantics on the record log.

use maxmin_lp::lab::campaign::RESULTS_FILE;
use maxmin_lp::lab::record::{JobRecord, JobStatus};
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_maxmin-lp"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn field(output: &str, key: &str) -> usize {
    output
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in output:\n{output}"))
        .trim()
        .parse()
        .unwrap()
}

/// 3 families × 2 sizes × 3 seeds × 2 R × {local, safe}:
/// 3·2·3·(2 + 1) = 54 jobs — the acceptance-criteria grid.
const SPEC: &str = "\
mmlplab 1
name cli-e2e
families cycle bandwidth random-3x3
sizes 10 16
seeds 0 1 2
R 2 3
solvers local safe
timeout_ms 0
workers 4
";
const TOTAL: usize = 54;

fn setup(tag: &str) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("mmlp-campaign-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let spec = root.join("grid.lab");
    std::fs::write(&spec, SPEC).unwrap();
    (root.clone(), spec)
}

fn load(dir: &Path) -> Vec<JobRecord> {
    std::fs::read_to_string(dir.join(RESULTS_FILE))
        .unwrap()
        .lines()
        .map(|l| JobRecord::from_json_line(l).unwrap())
        .collect()
}

#[test]
fn campaign_run_report_status_pipeline() {
    let (root, spec) = setup("pipeline");
    let out_dir = root.join("out");
    let out = run_ok(&[
        "campaign",
        "run",
        spec.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(field(&out, "total"), TOTAL);
    assert_eq!(field(&out, "executed"), TOTAL);
    assert_eq!(field(&out, "ok"), TOTAL);

    // Every record satisfies the paper's sanity threshold: utility is
    // at least `optimum / (guarantee + ε-slack)`, i.e. ratio ≤ guarantee.
    let records = load(&out_dir);
    assert_eq!(records.len(), TOTAL);
    for r in &records {
        assert_eq!(r.status, JobStatus::Ok, "{}", r.error);
        assert!(r.utility > 0.0);
        assert!(
            r.ratio <= r.guarantee + 1e-6,
            "job {}: ratio {} above guarantee {}",
            r.job_id,
            r.ratio,
            r.guarantee
        );
        assert!(r.ratio >= 1.0 - 1e-9, "optimum is an upper bound");
    }

    // Report renders the tables and writes CSV artefacts.
    let report = run_ok(&["campaign", "report", out_dir.to_str().unwrap(), "--csv"]);
    assert!(report.contains("campaign report"), "{report}");
    assert!(report.contains("within its proved guarantee"), "{report}");
    for csv in ["ratio.csv", "comparison.csv", "scaling.csv"] {
        let text = std::fs::read_to_string(out_dir.join(csv)).unwrap();
        assert!(text.lines().count() > 1, "{csv} has data rows");
    }

    // Status sees a complete campaign.
    let status = run_ok(&["campaign", "status", out_dir.to_str().unwrap()]);
    assert_eq!(field(&status, "completed"), TOTAL);
    assert!(status.contains("complete true"), "{status}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn killed_campaign_resumes_without_redoing_completed_jobs() {
    let (root, spec) = setup("resume");
    let out_dir = root.join("out");
    run_ok(&[
        "campaign",
        "run",
        spec.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--quiet",
    ]);

    // Simulate a mid-run kill: 30 intact records plus one torn line.
    let log_path = out_dir.join(RESULTS_FILE);
    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut truncated = lines[..30].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[30][..lines[30].len() / 2]);
    std::fs::write(&log_path, &truncated).unwrap();

    let status = run_ok(&["campaign", "status", out_dir.to_str().unwrap()]);
    assert_eq!(field(&status, "completed"), 30);
    assert_eq!(field(&status, "pending"), TOTAL - 30);

    // Rerun: every completed job is skipped, only the lost ones run.
    let out = run_ok(&[
        "campaign",
        "run",
        spec.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(field(&out, "skipped"), 30);
    assert_eq!(field(&out, "executed"), TOTAL - 30);

    // And a second rerun is a complete no-op.
    let out = run_ok(&[
        "campaign",
        "run",
        spec.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(field(&out, "skipped"), TOTAL);
    assert_eq!(field(&out, "executed"), 0);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn campaign_usage_and_error_paths() {
    // Unknown subcommand → usage (2).
    let out = bin().args(["campaign", "frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Spec naming an unknown family → error (1), before any work runs.
    let root = std::env::temp_dir().join(format!("mmlp-campaign-bad-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    let spec = root.join("bad.lab");
    std::fs::write(
        &spec,
        "mmlplab 1\nfamilies nope\nsizes 8\nseeds 0\nR 2\nsolvers local\n",
    )
    .unwrap();
    let out = bin()
        .args(["campaign", "run", spec.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown family"));

    // Report on an empty directory → error (1).
    let out = bin()
        .args(["campaign", "report", root.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn solve_accepts_threads_flag() {
    let root = std::env::temp_dir().join(format!("mmlp-threads-cli-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    let file = root.join("inst.mmlp");
    std::fs::write(&file, run_ok(&["generate", "bandwidth", "20", "3"])).unwrap();

    let one = run_ok(&["solve", file.to_str().unwrap(), "--threads", "1"]);
    let four = run_ok(&["solve", file.to_str().unwrap(), "--threads", "4"]);
    let get = |out: &str| -> String {
        out.lines()
            .find_map(|l| l.strip_prefix("utility "))
            .unwrap()
            .to_string()
    };
    assert_eq!(get(&one), get(&four), "threads must not change the output");
    assert!(one.contains("threads=1") && four.contains("threads=4"));

    // Invalid thread counts are usage errors.
    let out = bin()
        .args(["solve", file.to_str().unwrap(), "--threads", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn info_prints_the_paper_bound() {
    let root = std::env::temp_dir().join(format!("mmlp-info-cli-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    let file = root.join("inst.mmlp");
    std::fs::write(&file, run_ok(&["generate", "random-3x3", "20", "0"])).unwrap();
    let info = run_ok(&["info", file.to_str().unwrap()]);
    let bound: f64 = info
        .lines()
        .find_map(|l| l.strip_prefix("paper_bound "))
        .expect("info prints the paper bound")
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    // random-3x3 has ΔI = ΔK = 3: the paper bound is 3(1 − 1/3) = 2.
    assert!((bound - 2.0).abs() < 1e-12, "{info}");
    std::fs::remove_dir_all(&root).ok();
}
