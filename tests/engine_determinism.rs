//! Determinism of the parallel round executor: the sharded multi-thread
//! path must be **bit-identical** to the sequential one, including the
//! degenerate `threads > n_nodes` configuration (every shard holds at
//! most one node). The engine only takes its parallel path for
//! networks of ≥ 256 nodes, so the instance here is sized to actually
//! exercise it — the in-crate engine tests use smaller networks and
//! silently fall back to the sequential loop.

use maxmin_lp::core::distributed::{solve_distributed, DistMaxMin};
use maxmin_lp::core::SpecialForm;
use maxmin_lp::gen::special::{random_special_form, SpecialFormConfig};
use maxmin_lp::net::{engine, Network};

fn large_special_form(seed: u64) -> SpecialForm {
    let inst = random_special_form(
        &SpecialFormConfig {
            n_objectives: 64,
            delta_k: 3,
            extra_constraints: 32,
            coef_range: (0.5, 2.0),
        },
        seed,
    );
    SpecialForm::new(inst).expect("generator produces special form")
}

#[test]
fn parallel_executor_is_bit_identical_for_extreme_thread_counts() {
    let sf = large_special_form(9);
    let net = Network::new(sf.instance());
    let n = net.n_nodes();
    assert!(
        n >= 256,
        "instance must be large enough to exercise the sharded parallel path, got {n} nodes"
    );

    let protocol = DistMaxMin::new(2);
    let seq = engine::run(&net, &protocol);
    // threads = 1 must take the sequential path; threads = n + 3 means
    // more workers than nodes (each shard holds at most one node).
    for threads in [1usize, n + 3] {
        let par = engine::run_parallel(&net, &protocol, threads);
        assert_eq!(par.stats, seq.stats, "threads = {threads}");
        assert_eq!(par.states.len(), seq.states.len());
        for (x, (a, b)) in par.states.iter().zip(&seq.states).enumerate() {
            let bits = |v: Option<f64>| v.map(f64::to_bits);
            assert_eq!(bits(a.x), bits(b.x), "node {x} output, threads = {threads}");
            assert_eq!(
                bits(a.t),
                bits(b.t),
                "node {x} tree bound, threads = {threads}"
            );
        }
    }
}

#[test]
fn distributed_solve_is_reproducible_across_runs() {
    // Same seed → bit-identical outcome, run to run (no hidden
    // scheduler nondeterminism leaks into results).
    let a = solve_distributed(&large_special_form(4), 2);
    let b = solve_distributed(&large_special_form(4), 2);
    assert_eq!(a.stats, b.stats);
    for (x, y) in a.t.iter().zip(&b.t) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for v in 0..a.solution.as_slice().len() {
        assert_eq!(
            a.solution.as_slice()[v].to_bits(),
            b.solution.as_slice()[v].to_bits()
        );
    }
}
