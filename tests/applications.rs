//! Application-level integration: the intro's motivating workloads and
//! the packing/covering reduction, end to end.

use maxmin_lp::core::packing::{solve_mixed, MixedProblem, MixedVerdict};
use maxmin_lp::core::safe::safe_solution;
use maxmin_lp::core::solver::LocalSolver;
use maxmin_lp::gen::apps::{bandwidth_ladder, sensor_grid, BandwidthConfig, SensorGridConfig};
use maxmin_lp::lp::solve_maxmin;

#[test]
fn sensor_grid_end_to_end() {
    let inst = sensor_grid(
        &SensorGridConfig {
            width: 5,
            height: 5,
            cost_range: (1.0, 2.0),
        },
        3,
    );
    let opt = solve_maxmin(&inst).unwrap().omega;
    // On the torus with self-relay cost 1, routing everything through
    // yourself would give 1/cost; the optimum balances across relays.
    assert!(opt > 0.5 && opt <= 5.0);
    for big_r in [2, 3] {
        let out = LocalSolver::new(big_r).with_threads(2).solve(&inst);
        assert!(out.solution.is_feasible(&inst, 1e-7));
        let ratio = opt / out.solution.utility(&inst);
        assert!(
            ratio <= LocalSolver::new(big_r).guarantee(5, 5) + 1e-6,
            "R {big_r}: ratio {ratio}"
        );
    }
}

#[test]
fn bandwidth_local_beats_safe_at_moderate_r() {
    // ΔI = 3, ΔK = 2: the guarantee beats the safe algorithm's ΔI = 3
    // already at R = 2 (2·1.5 = 3); measured utilities should confirm
    // at R = 4 across seeds.
    let mut local_wins = 0;
    let n = 4;
    for seed in 0..n {
        let inst = bandwidth_ladder(
            &BandwidthConfig {
                n_customers: 20,
                window: 3,
                coef_range: (0.8, 1.25),
            },
            seed,
        );
        let local = LocalSolver::new(4).solve(&inst).solution.utility(&inst);
        let safe = safe_solution(&inst).utility(&inst);
        if local >= safe - 1e-9 {
            local_wins += 1;
        }
    }
    assert!(
        local_wins >= n - 1,
        "local should match or beat safe on bandwidth ({local_wins}/{n})"
    );
}

#[test]
fn mixed_packing_covering_scales_with_r() {
    // A feasibility question right at the decision boundary: the
    // unresolved band must shrink as R grows.
    let mut p = MixedProblem::new(4);
    p.add_packing(vec![(0, 1.0), (1, 1.0)], 1.0);
    p.add_packing(vec![(2, 1.0), (3, 1.0)], 1.0);
    p.add_covering(vec![(0, 1.0), (2, 1.0)], 0.9);
    p.add_covering(vec![(1, 1.0), (3, 1.0)], 0.9);
    let mut coverages = Vec::new();
    for big_r in [2, 4, 8] {
        match solve_mixed(&p, big_r) {
            MixedVerdict::Feasible { x } => {
                assert!(p.max_violation(&x) < 1e-7);
                coverages.push(1.0);
            }
            MixedVerdict::Unresolved { coverage, .. } => coverages.push(coverage),
            MixedVerdict::Infeasible { omega_upper } => {
                panic!("feasible system misjudged (bound {omega_upper})")
            }
        }
    }
    assert!(
        coverages.last().unwrap() >= coverages.first().unwrap(),
        "coverage should not degrade with R: {coverages:?}"
    );
}

#[test]
fn solver_works_on_instances_loaded_from_text() {
    // Full persistence round trip: generate, serialise, parse, solve.
    let inst = bandwidth_ladder(
        &BandwidthConfig {
            n_customers: 12,
            window: 2,
            coef_range: (1.0, 1.0),
        },
        0,
    );
    let text = maxmin_lp::instance::textfmt::write_instance(&inst);
    let back = maxmin_lp::instance::textfmt::parse_instance(&text).unwrap();
    let a = LocalSolver::new(3).solve(&inst).solution;
    let b = LocalSolver::new(3).solve(&back).solution;
    for v in inst.agents() {
        assert_eq!(a.value(v).to_bits(), b.value(v).to_bits());
    }
}
