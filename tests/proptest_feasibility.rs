//! Property-based tests (proptest) over randomly parameterised
//! workloads: the invariants that must hold for *every* instance.

use maxmin_lp::core::safe::safe_solution;
use maxmin_lp::core::solver::LocalSolver;
use maxmin_lp::core::transform::to_special_form;
use maxmin_lp::core::tree_bound::TreeBound;
use maxmin_lp::core::SpecialForm;
use maxmin_lp::gen::random::{random_general, RandomConfig};
use maxmin_lp::gen::special::{is_special_form, random_special_form, SpecialFormConfig};
use maxmin_lp::instance::textfmt;
use maxmin_lp::lp::maxmin::{bisect_maxmin, solve_maxmin};
use proptest::prelude::*;

fn arb_random_config() -> impl Strategy<Value = (RandomConfig, u64)> {
    (
        4usize..24,
        2usize..16,
        2usize..12,
        2usize..5,
        2usize..5,
        0u64..1_000,
    )
        .prop_map(|(n, m, p, di, dk, seed)| {
            (
                RandomConfig {
                    n_agents: n,
                    n_constraints: m,
                    n_objectives: p,
                    delta_i: di,
                    delta_k: dk,
                    coef_range: (0.25, 4.0),
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The local solver's output is feasible and nontrivial on every
    /// generated instance, at every small R.
    #[test]
    fn solver_output_is_always_feasible((cfg, seed) in arb_random_config(), big_r in 2usize..5) {
        let inst = random_general(&cfg, seed);
        let out = LocalSolver::new(big_r).solve(&inst);
        let rep = out.solution.feasibility(&inst);
        prop_assert!(rep.is_feasible(1e-7), "violation {:?}", rep.max_constraint_violation);
        prop_assert!(out.solution.utility(&inst) >= 0.0);
    }

    /// The safe baseline is feasible, and the local solver never loses
    /// to it by more than the ratio of their guarantees.
    #[test]
    fn safe_baseline_is_always_feasible((cfg, seed) in arb_random_config()) {
        let inst = random_general(&cfg, seed);
        let safe = safe_solution(&inst);
        prop_assert!(safe.is_feasible(&inst, 1e-7));
    }

    /// The §4 pipeline always lands in special form and its back-map
    /// preserves feasibility of arbitrary feasible points (not just
    /// optima): map the scaled-safe solution of the special instance.
    #[test]
    fn pipeline_backmap_preserves_feasibility((cfg, seed) in arb_random_config()) {
        let inst = random_general(&cfg, seed);
        let t = to_special_form(&inst);
        prop_assert!(is_special_form(&t.instance));
        let x_special = safe_solution(&t.instance);
        prop_assert!(x_special.is_feasible(&t.instance, 1e-9));
        let mapped = t.map_back(&x_special);
        prop_assert!(mapped.is_feasible(&inst, 1e-7));
    }

    /// t_u is monotone non-increasing in R and always upper-bounds the
    /// LP optimum (Lemma 2).
    #[test]
    fn tree_bounds_shrink_with_r(seed in 0u64..500) {
        let inst = random_special_form(&SpecialFormConfig {
            n_objectives: 6,
            delta_k: 3,
            extra_constraints: 3,
            coef_range: (0.5, 2.0),
        }, seed);
        let opt = solve_maxmin(&inst).unwrap().omega;
        let sf = SpecialForm::new(inst).unwrap();
        let mut prev: Option<Vec<f64>> = None;
        for big_r in [2usize, 3, 4] {
            let t = TreeBound::new(&sf, big_r).all();
            for &tu in &t {
                prop_assert!(tu >= opt - 1e-6, "t_u {tu} < opt {opt}");
            }
            if let Some(p) = &prev {
                for (a, b) in t.iter().zip(p) {
                    prop_assert!(a <= &(b + 1e-9));
                }
            }
            prev = Some(t);
        }
    }

    /// The simplex agrees with the independent bisection+phase-1 oracle.
    #[test]
    fn simplex_matches_bisection((cfg, seed) in arb_random_config()) {
        let inst = random_general(&cfg, seed);
        let a = solve_maxmin(&inst).unwrap().omega;
        let b = bisect_maxmin(&inst, 1e-9).unwrap();
        prop_assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0), "simplex {a} vs bisection {b}");
    }

    /// The text format round-trips every generated instance exactly.
    #[test]
    fn textfmt_roundtrip((cfg, seed) in arb_random_config()) {
        let inst = random_general(&cfg, seed);
        let text = textfmt::write_instance(&inst);
        let back = textfmt::parse_instance(&text).unwrap();
        prop_assert_eq!(textfmt::write_instance(&back), text);
    }

    /// Utility of the solver output is within the Theorem 1 guarantee of
    /// the optimum (the headline property, fuzzed).
    #[test]
    fn theorem1_guarantee_fuzzed((cfg, seed) in arb_random_config(), big_r in 2usize..4) {
        let inst = random_general(&cfg, seed);
        let stats = maxmin_lp::instance::DegreeStats::of(&inst);
        let opt = solve_maxmin(&inst).unwrap().omega;
        let solver = LocalSolver::new(big_r);
        let got = solver.solve(&inst).solution.utility(&inst);
        let guarantee = solver.guarantee(stats.delta_i, stats.delta_k);
        prop_assert!(got * guarantee >= opt - 1e-6,
            "ratio {} exceeds guarantee {guarantee}", opt / got);
    }
}
