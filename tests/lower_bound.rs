//! Integration check of the Theorem 1 lower-bound reproduction: the
//! optimum gap between locally indistinguishable instances approaches
//! `ΔI (1 − 1/ΔK)`, and the algorithm's outputs agree on
//! view-isomorphic agents across the two instances.

use maxmin_lp::core::solver::LocalSolver;
use maxmin_lp::core::{ratio, unfold};
use maxmin_lp::gen::lower_bound::{regular_gadget, regular_gadget_optimum, tree_gadget};
use maxmin_lp::instance::Node;
use maxmin_lp::lp::solve_maxmin;

#[test]
fn regular_gadget_optimum_is_d_over_delta_i() {
    for (d, di) in [(3, 2), (4, 2), (3, 3)] {
        let n = if (8 * d) % di == 0 { 8 } else { di * 4 };
        let (inst, _) = regular_gadget(n, d, di, 4, 5);
        let opt = solve_maxmin(&inst).unwrap().omega;
        assert!(
            (opt - regular_gadget_optimum(d, di)).abs() < 1e-6,
            "d={d} ΔI={di}: opt {opt}"
        );
    }
}

#[test]
fn optimum_gap_approaches_the_threshold() {
    // ΔI = 2, d = ΔK = 3: threshold 4/3. The tree optimum ≥ 2, the
    // regular optimum = 3/2, so the gap is ≥ 4/3 already at depth 3.
    let (tree, witness) = tree_gadget(3, 2, 3);
    let (regular, _) = regular_gadget(24, 3, 2, 5, 2);
    let opt_tree = solve_maxmin(&tree).unwrap().omega;
    let opt_reg = solve_maxmin(&regular).unwrap().omega;
    assert!(witness.utility(&tree) >= 2.0 - 1e-9);
    let gap = opt_tree / opt_reg;
    let threshold = ratio::threshold(2, 3);
    assert!(
        gap >= threshold - 1e-9,
        "gap {gap} below threshold {threshold}"
    );
    assert!(
        gap < threshold + 0.1,
        "gap should approach the threshold from above"
    );
}

#[test]
fn outputs_agree_on_view_isomorphic_pairs_across_instances() {
    let (regular, girth) = regular_gadget(60, 3, 2, 8, 7);
    assert!(girth >= 7, "need girth beyond the R=2 dependence radius");
    let (tree, _) = tree_gadget(3, 2, 5);
    let big_r = 2;
    let depth = 6;
    let x_reg = LocalSolver::new(big_r).solve(&regular).solution;
    let x_tree = LocalSolver::new(big_r).solve(&tree).solution;

    // Match view-isomorphic agents by canonical interned id (one shared
    // arena; equality is an integer compare).
    let mut arena = maxmin_lp::net::ViewArena::new();
    let mut it_reg = unfold::ViewInterner::new(&regular);
    let mut it_tree = unfold::ViewInterner::new(&tree);
    let ids_reg: Vec<_> = regular
        .agents()
        .map(|v| it_reg.intern_canonical(&mut arena, Node::Agent(v), depth))
        .collect();
    let mut matched = 0;
    for w in tree.agents() {
        let iw = it_tree.intern_canonical(&mut arena, Node::Agent(w), depth);
        if let Some(v) = regular.agents().find(|v| ids_reg[v.idx()] == iw) {
            matched += 1;
            assert!(
                (x_reg.value(v) - x_tree.value(w)).abs() < 1e-9,
                "isomorphic agents {v}/{w} diverged"
            );
        }
    }
    assert!(matched > 0, "interior tree agents must match gadget agents");
}

#[test]
fn algorithm_ratio_stays_between_threshold_and_guarantee_on_gadgets() {
    let threshold = ratio::threshold(2, 3);
    let (regular, _) = regular_gadget(30, 3, 2, 6, 1);
    let (tree, _) = tree_gadget(3, 2, 3);
    for big_r in [2, 3] {
        let solver = LocalSolver::new(big_r);
        let guarantee = ratio::guarantee(2, 3, big_r);
        let mut worst: f64 = 0.0;
        for inst in [&regular, &tree] {
            let opt = solve_maxmin(inst).unwrap().omega;
            let got = solver.solve(inst).solution.utility(inst);
            worst = worst.max(opt / got);
        }
        assert!(
            worst <= guarantee + 1e-6,
            "R {big_r}: worst ratio {worst} beats guarantee {guarantee}"
        );
        // The family is adversarial: the worst of the two ratios should
        // already be in the threshold's neighbourhood.
        assert!(
            worst >= threshold - 0.05,
            "R {big_r}: family not adversarial enough ({worst} vs {threshold})"
        );
    }
}
