//! Robustness properties: parsers never panic, generators are
//! deterministic and valid at every size, and the communication graph's
//! port structure is self-consistent on arbitrary instances.

use maxmin_lp::gen::catalog;
use maxmin_lp::gen::random::{random_general, RandomConfig};
use maxmin_lp::instance::{textfmt, CommGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The text parser returns errors (never panics) on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = textfmt::parse_instance(&input);
    }

    /// Structured-but-corrupt input: random token streams after a valid
    /// header must error or parse — never panic, never build an invalid
    /// instance.
    #[test]
    fn parser_handles_corrupt_rows(
        n in 1usize..5,
        rows in proptest::collection::vec((0u32..8, -2.0f64..4.0), 0..6)
    ) {
        let mut text = format!("maxminlp 1\nagents {n}\n");
        for (a, c) in rows {
            text.push_str(&format!("c {a}:{c}\no {a}:{c}\n"));
        }
        if let Ok(inst) = textfmt::parse_instance(&text) {
            // Anything that parses satisfies the structural invariants.
            for i in inst.constraints() {
                for e in inst.constraint_row(i) {
                    prop_assert!(e.coef > 0.0 && e.coef.is_finite());
                    prop_assert!(e.agent.idx() < inst.n_agents());
                }
            }
        }
    }

    /// Reciprocal port labels are consistent on arbitrary random
    /// instances (walking any edge out and back returns to the start).
    #[test]
    fn comm_graph_ports_are_reciprocal(seed in 0u64..300) {
        let inst = random_general(&RandomConfig::default(), seed);
        let g = CommGraph::new(&inst);
        for x in 0..g.n_nodes() as u32 {
            for (port, adj) in g.neighbors(x).iter().enumerate() {
                let back = g.neighbors(adj.to)[adj.port_at_to as usize];
                prop_assert_eq!(back.to, x);
                prop_assert_eq!(back.port_at_to as usize, port);
                prop_assert_eq!(back.edge, adj.edge);
            }
        }
    }
}

#[test]
fn all_families_deterministic_at_all_sizes() {
    for fam in catalog() {
        for size in [20, 50, 90] {
            let a = textfmt::write_instance(&fam.instance(size, 3));
            let b = textfmt::write_instance(&fam.instance(size, 3));
            assert_eq!(
                a, b,
                "family {} size {size} must be deterministic",
                fam.name
            );
        }
    }
}

#[test]
fn round_trip_through_text_preserves_all_families() {
    for fam in catalog() {
        let inst = fam.instance(40, 9);
        let text = textfmt::write_instance(&inst);
        let back =
            textfmt::parse_instance(&text).unwrap_or_else(|e| panic!("family {}: {e}", fam.name));
        assert_eq!(textfmt::write_instance(&back), text, "family {}", fam.name);
    }
}
