//! Locality guarantees: the output of an agent depends only on its
//! radius-O(R) neighbourhood — editing the instance far away changes
//! nothing, and agents with isomorphic views produce identical outputs.

use maxmin_lp::core::solver::LocalSolver;
use maxmin_lp::core::unfold;
use maxmin_lp::gen::special::{cycle_special, path_special};
use maxmin_lp::instance::{AgentId, CommGraph, InstanceBuilder, Node};

/// Rebuilds a cycle instance with one constraint's coefficients scaled.
fn cycle_with_edit(
    n_objectives: usize,
    edited: usize,
    factor: f64,
) -> maxmin_lp::instance::Instance {
    let base = cycle_special(n_objectives, 1.0);
    let mut b = InstanceBuilder::with_agents(base.n_agents());
    for (idx, i) in base.constraints().enumerate() {
        let row: Vec<(AgentId, f64)> = base
            .constraint_row(i)
            .iter()
            .map(|e| {
                (
                    e.agent,
                    if idx == edited {
                        e.coef * factor
                    } else {
                        e.coef
                    },
                )
            })
            .collect();
        b.add_constraint(&row).unwrap();
    }
    for k in base.objectives() {
        let row: Vec<(AgentId, f64)> = base
            .objective_row(k)
            .iter()
            .map(|e| (e.agent, e.coef))
            .collect();
        b.add_objective(&row).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn far_away_edits_do_not_change_outputs() {
    let n = 48;
    let base = cycle_special(n, 1.0);
    let edited = cycle_with_edit(n, 0, 2.5);
    let g = CommGraph::new(&base);
    let src = g.constraint_index(maxmin_lp::instance::ConstraintId::new(0));
    let dist = g.bfs(src, u32::MAX);

    for big_r in [2, 3] {
        let solver = LocalSolver::new(big_r);
        let x0 = solver.solve(&base).solution;
        let x1 = solver.solve(&edited).solution;
        // Dependence radius: view gathering (4r+2) + smoothing flood
        // (4r+2) + g-recursion relays (≤ 4r+2) = 12r+6 = 12R−18.
        let horizon = (12 * big_r - 18) as u32;
        let mut changed_radius = 0u32;
        for v in base.agents() {
            if (x0.value(v) - x1.value(v)).abs() > 1e-12 {
                changed_radius = changed_radius.max(dist[v.idx()]);
            }
        }
        assert!(
            changed_radius <= horizon,
            "R {big_r}: output changed at distance {changed_radius} > horizon {horizon}"
        );
        // And far agents are bit-identical, not merely close.
        for v in base.agents() {
            if dist[v.idx()] > horizon {
                assert_eq!(
                    x0.value(v).to_bits(),
                    x1.value(v).to_bits(),
                    "agent {v} beyond the horizon must be unaffected"
                );
            }
        }
    }
}

#[test]
fn view_isomorphic_agents_get_identical_outputs() {
    // Long path vs long cycle: interior path agents cannot tell the
    // difference, so the algorithm must treat them identically.
    let big_r = 2;
    let cycle = cycle_special(16, 1.0);
    let path = path_special(16, 1.0);
    let depth = 8; // > dependence radius 12R−18 = 6 at R = 2
    let xc = LocalSolver::new(big_r).solve(&cycle).solution;
    let xp = LocalSolver::new(big_r).solve(&path).solution;
    let mut matched = 0;
    for w in path.agents() {
        // Compare with the same-parity cycle agent (ports align).
        let v = AgentId::new(w.raw() % 2);
        if unfold::views_equal(&path, Node::Agent(w), &cycle, Node::Agent(v), depth) {
            matched += 1;
            assert!(
                (xp.value(w) - xc.value(v)).abs() < 1e-12,
                "indistinguishable agents {w}/{v} diverged"
            );
        }
    }
    assert!(matched > 8, "interior agents must match (got {matched})");
}

#[test]
fn canonical_codes_predict_output_equality_within_one_instance() {
    // All agents of the unit cycle share one canonical code and one
    // output value.
    let inst = cycle_special(10, 1.0);
    let code0 = unfold::canonical_view_code(&inst, Node::Agent(AgentId::new(0)), 6);
    let x = LocalSolver::new(2).solve(&inst).solution;
    for v in inst.agents() {
        assert_eq!(unfold::canonical_view_code(&inst, Node::Agent(v), 6), code0);
        assert!((x.value(v) - x.value(AgentId::new(0))).abs() < 1e-12);
    }
}
