//! Property test: the binary codec round-trips **bit-identically**
//! with the text format for instances drawn from every family in the
//! generator catalogue — the invariant the persistent store leans on,
//! since a stored blob must decode to exactly the instance whose
//! content hash names it (same canonical serialisation, same
//! [`instance_hash`], same port order down to the float bits).

use maxmin_lp::gen::catalog;
use maxmin_lp::instance::hash::instance_hash;
use maxmin_lp::instance::textfmt::{parse_instance, write_instance};
use maxmin_lp::store::codec::{decode_instance, encode_instance};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every catalogue family: `decode(encode(i))` reproduces `i`
    /// exactly (structure, port order, float bits, content hash), the
    /// encoding itself is deterministic, and a binary→text→binary
    /// round trip is byte-identical in both representations.
    #[test]
    fn every_catalog_family_round_trips_through_the_codec(size in 8usize..48, seed in 0u64..1_000) {
        for fam in catalog() {
            let inst = fam.instance(size, seed);
            let blob = encode_instance(&inst);
            let back = decode_instance(&blob)
                .unwrap_or_else(|e| panic!("family {}: {e}", fam.name));

            prop_assert_eq!(back.n_agents(), inst.n_agents());
            prop_assert_eq!(back.n_constraints(), inst.n_constraints());
            prop_assert_eq!(back.n_objectives(), inst.n_objectives());
            for i in inst.constraints() {
                prop_assert_eq!(back.constraint_row(i), inst.constraint_row(i));
            }
            for k in inst.objectives() {
                prop_assert_eq!(back.objective_row(k), inst.objective_row(k));
            }
            prop_assert_eq!(
                instance_hash(&back),
                instance_hash(&inst),
                "family {}: content hash must survive the codec",
                fam.name
            );

            // Deterministic encoding: same instance, same bytes.
            prop_assert_eq!(encode_instance(&back), blob.clone(), "family {}", fam.name);

            // Cross-format: binary → text → binary is byte-identical,
            // and text → binary → text likewise.
            let text = write_instance(&back);
            let reparsed = parse_instance(&text)
                .unwrap_or_else(|e| panic!("family {} (reparse): {e}", fam.name));
            prop_assert_eq!(encode_instance(&reparsed), blob.clone(), "family {} text→binary", fam.name);
            prop_assert_eq!(write_instance(&inst), text, "family {} binary→text", fam.name);
        }
    }
}
