//! End-to-end tests of the event-driven front-end's incremental
//! parsing and pipelining, over real TCP sockets:
//!
//! * a request script split at **every byte boundary** (mid-`TRACE`,
//!   mid-command-line, mid-body) must produce byte-identical replies to
//!   the unsplit script;
//! * a pipelined burst written in one shot — including a cold solve
//!   ahead of cheap commands — must be answered strictly in request
//!   order;
//! * a slow-loris connection holding half a command line must not
//!   starve other clients on the same event loop, and must not block
//!   shutdown;
//! * the load generator's open-pipeline mode must drive a clean run.

use maxmin_lp::instance::hash::{hash_hex, instance_hash};
use maxmin_lp::instance::textfmt;
use maxmin_lp::serve::client::{Client, ClientReply, PipelinedClient};
use maxmin_lp::serve::loadgen::{run_loadgen, LoadConfig};
use maxmin_lp::serve::protocol::Op;
use maxmin_lp::serve::server::{ServeConfig, Server, ServerSummary};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn spawn_server(cfg: ServeConfig) -> (String, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// A small instance, so the byte-boundary sweep stays fast.
fn small_instance_text() -> String {
    let fam = maxmin_lp::gen::catalog();
    let fam = fam.iter().find(|f| f.name == "bandwidth").unwrap();
    textfmt::write_instance(&fam.instance(8, 2))
}

/// Reads `n` framed replies (`OK {len}\n{body}` / `ERR ...\n`) off the
/// stream, returning the raw wire bytes — headers, bodies and all — so
/// callers can compare runs byte for byte.
fn read_frames(reader: &mut BufReader<TcpStream>, n: usize) -> Vec<u8> {
    let mut raw = Vec::new();
    for _ in 0..n {
        let mut header = String::new();
        let got = reader.read_line(&mut header).expect("reply header");
        assert!(got > 0, "connection closed before all replies arrived");
        raw.extend_from_slice(header.as_bytes());
        if let Some(rest) = header.trim_end().strip_prefix("OK ") {
            let nbytes: usize = rest.trim().parse().expect("OK length");
            let mut body = vec![0u8; nbytes];
            reader.read_exact(&mut body).expect("reply body");
            raw.extend_from_slice(&body);
        }
    }
    raw
}

#[test]
fn every_byte_boundary_split_parses_identically() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let text = small_instance_text();
    let hash = hash_hex(instance_hash(&textfmt::parse_instance(&text).unwrap()));

    // One script, three replies (the TRACE line gets none): a traced
    // PUT with its body, a SOLVE by hash, and a PING. Every later
    // run warm-hits the solve, so the sweep is cheap.
    let script = format!(
        "TRACE 00000000deadbeef\nPUT {}\n{text}SOLVE hash:{hash} R=3 THREADS=1\nPING\n",
        text.len()
    );
    let script = script.as_bytes();

    // Reference: the whole script in one write.
    let expected = {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(script).unwrap();
        read_frames(&mut BufReader::new(stream), 3)
    };
    assert!(
        std::str::from_utf8(&expected).unwrap().contains("utility "),
        "reference run must contain a solve body"
    );

    // Every split point, including mid-TRACE (i < 20), mid-command and
    // mid-body. The pause between halves lets the event loop observe
    // the partial read; coalesced delivery would only make the case
    // easier, never wrong.
    for i in 1..script.len() {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&script[..i]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&script[i..]).unwrap();
        let got = read_frames(&mut BufReader::new(stream), 3);
        assert_eq!(
            got,
            expected,
            "split at byte {i} changed the replies ({:?} | {:?})",
            String::from_utf8_lossy(&script[..i.min(40)]),
            String::from_utf8_lossy(&script[i..script.len().min(i + 40)]),
        );
    }

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0, "{summary:?}");
}

#[test]
fn pipelined_burst_is_answered_in_request_order() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let text = small_instance_text();
    let hash = hash_hex(instance_hash(&textfmt::parse_instance(&text).unwrap()));

    let mut pc = PipelinedClient::connect(&addr).unwrap();
    // The whole conversation queued before a single reply is read: the
    // PUT the solve depends on, a *cold* solve (which detours through
    // the worker pool), and a tail of inline PINGs that the server
    // could answer instantly — but must hold until the solve's slot
    // ahead of them is filled.
    pc.send(&format!("PUT {}", text.len()), Some(text.as_bytes()))
        .unwrap();
    pc.send_run_hash(Op::Solve, &hash, 3, 1).unwrap();
    for _ in 0..10 {
        pc.send("PING", None).unwrap();
    }
    pc.flush().unwrap();
    assert_eq!(pc.in_flight(), 12);

    let put_reply = pc.recv().unwrap().into_ok().unwrap();
    assert_eq!(put_reply.trim(), format!("hash {hash}"), "reply 1 is PUT");
    let solve = pc.recv().unwrap().into_ok().unwrap();
    assert!(solve.contains("utility "), "reply 2 is the solve: {solve}");
    for i in 0..10 {
        let pong = pc.recv().unwrap().into_ok().unwrap();
        assert_eq!(pong, "pong\n", "reply {} is a pong", i + 3);
    }
    assert_eq!(pc.in_flight(), 0);

    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    let misses = maxmin_lp::serve::client::stat(&stats, "cache_misses");
    assert_eq!(misses, 1, "the burst's solve was cold");
    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0, "{summary:?}");
}

#[test]
fn slow_loris_does_not_starve_the_event_loop_or_block_shutdown() {
    // One event loop: the loris and the working client share it, so
    // any starvation would be visible immediately.
    let (addr, handle) = spawn_server(ServeConfig {
        event_loops: 1,
        ..ServeConfig::default()
    });

    // The loris: half a command line, then silence (the socket stays
    // open, the server's parser stays mid-line).
    let mut loris = TcpStream::connect(&addr).unwrap();
    loris.write_all(b"SOLVE hash:0123").unwrap();
    loris.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));

    // A well-behaved client on the same loop keeps full service.
    let mut c = Client::connect(&addr).unwrap();
    let text = small_instance_text();
    let hash = c.put(&text).unwrap().unwrap();
    let started = Instant::now();
    for _ in 0..20 {
        let reply = c.run_hash(Op::Solve, &hash, 3, 1).unwrap();
        assert!(matches!(reply, ClientReply::Ok(_)), "{reply:?}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "requests behind a slow-loris peer took {:?}",
        started.elapsed()
    );

    // Shutdown is not held up by the half-sent command either: a
    // partial line is not in-flight work.
    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0, "{summary:?}");

    // And the loris learns about it: its connection is closed.
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(loris.read(&mut buf).unwrap_or(0), 0, "loris must see EOF");
}

#[test]
fn open_pipeline_loadgen_runs_clean() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let report = run_loadgen(&LoadConfig {
        addr: addr.clone(),
        clients: 4,
        requests: 200,
        pipeline: 8,
        instance_text: small_instance_text(),
        shutdown_after: true,
        ..LoadConfig::default()
    })
    .expect("loadgen");
    assert_eq!(report.ok, report.sent, "{:?}", report.first_error);
    assert_eq!(report.errors, 0);
    assert_eq!(
        report.distinct_bodies, 1,
        "pipelined replies must stay bit-identical"
    );
    assert!(report.throughput() > 0.0);
    let summary = handle.join().unwrap();
    assert_eq!(summary.errors, 0, "{summary:?}");
}
