//! End-to-end tests of request tracing and the crash-safe event
//! journal: a client-minted `TRACE` id rides the wire, shows up as a
//! full span tree (queue → cache → solve phases → store) in the
//! journal, malformed trace lines degrade to `BADREQ` without killing
//! the connection, and a torn/corrupted journal tail is truncated on
//! restart with every surviving record checksum-clean.

use maxmin_lp::instance::textfmt;
use maxmin_lp::obs::journal::{read_journal_dir, EV_DELTA, EV_SPAN};
use maxmin_lp::obs::{format_trace_id, SpanTree};
use maxmin_lp::serve::client::{stat, Client, ClientReply};
use maxmin_lp::serve::protocol::{ErrorCode, Op};
use maxmin_lp::serve::server::{ServeConfig, Server, ServerSummary};
use std::io::Write as _;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mmlp-trace-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Binds on an ephemeral port and runs the server on a background
/// thread; returns the address and the join handle for the summary.
fn spawn_server(cfg: ServeConfig) -> (String, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn instance_text() -> String {
    let fam = maxmin_lp::gen::catalog();
    let fam = fam.iter().find(|f| f.name == "bandwidth").unwrap();
    textfmt::write_instance(&fam.instance(20, 3))
}

/// All span trees journaled for `trace_id`, parsed back from their
/// `EV_SPAN` text payloads.
fn journaled_trees(dir: &std::path::Path, trace_id: u64) -> Vec<SpanTree> {
    let (records, report) = read_journal_dir(dir).expect("read journal");
    assert_eq!(report.corrupt, 0, "journal should be checksum-clean");
    records
        .iter()
        .filter(|r| r.kind == EV_SPAN && r.trace_id == trace_id)
        .map(|r| SpanTree::parse_text(&r.text).expect("EV_SPAN payload parses as a span tree"))
        .collect()
}

#[test]
fn client_minted_trace_id_round_trips_into_a_full_span_tree() {
    let journal = temp_dir("roundtrip");
    let (addr, handle) = spawn_server(ServeConfig {
        journal_dir: Some(journal.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(&addr).unwrap();
    let hash = c.put(&instance_text()).unwrap().unwrap();

    let trace_id = 0xdead_beef_cafe_0001;
    c.trace_next(trace_id);
    let body = c
        .run_hash(Op::Solve, &hash, 3, 2)
        .unwrap()
        .into_ok()
        .unwrap();
    assert!(body.contains("x "), "solve body looks wrong: {body:?}");

    // A warm repeat under a second trace id: cache-hit span, no solve
    // phases.
    let warm_id = 0xdead_beef_cafe_0002;
    c.trace_next(warm_id);
    let warm = c
        .run_hash(Op::Solve, &hash, 3, 2)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(body, warm, "traced solves stay bit-identical");

    // STATS flushes the journal, so everything emitted so far is
    // durable before we read the directory back.
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "spans_recorded") >= 2, "{stats:?}");
    assert!(stat(&stats, "journal_records") >= 2, "{stats:?}");
    assert_eq!(stat(&stats, "journal_dropped"), 0, "{stats:?}");

    let trees = journaled_trees(&journal, trace_id);
    assert_eq!(trees.len(), 1, "one span tree for the cold solve");
    let tree = &trees[0];
    assert_eq!(tree.trace_id, trace_id);
    assert!(tree.label.starts_with("SOLVE "), "label: {:?}", tree.label);
    let names: Vec<&str> = tree.spans.iter().map(|s| s.name.as_str()).collect();
    for expect in [
        "queue",
        "execute",
        "cache:miss",
        "gather",
        "t_eval",
        "flood",
        "g",
        "store",
    ] {
        assert!(
            names.contains(&expect),
            "missing span {expect:?} in {names:?}"
        );
    }
    // Phase spans hang off the execute span, not the root.
    let exec = tree.spans.iter().find(|s| s.name == "execute").unwrap();
    let flood = tree.spans.iter().find(|s| s.name == "flood").unwrap();
    assert_eq!(flood.parent, exec.id, "solve phases nest under execute");

    // The rendered tree is what `maxmin-lp obs trace <id>` prints.
    let rendered = maxmin_lp::obs::render_span_tree(tree);
    assert!(rendered.contains(&format_trace_id(trace_id)), "{rendered}");
    assert!(rendered.contains("flood"), "{rendered}");

    let warm_trees = journaled_trees(&journal, warm_id);
    assert_eq!(warm_trees.len(), 1);
    let warm_names: Vec<&str> = warm_trees[0]
        .spans
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert!(warm_names.contains(&"cache:hit"), "{warm_names:?}");
    assert!(
        !warm_names.contains(&"flood"),
        "warm hit must not re-solve: {warm_names:?}"
    );

    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_trace_line_is_badreq_and_the_connection_survives() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();

    // Speak the wire protocol directly: a bad TRACE line earns an ERR
    // reply of its own and the next command still works.
    let reply = c.request("TRACE zz", None).unwrap();
    match reply {
        ClientReply::Err(code, msg) => {
            assert_eq!(code, ErrorCode::BadReq);
            assert!(msg.contains("trace"), "unexpected message: {msg:?}");
        }
        other => panic!("expected ERR BADREQ, got {other:?}"),
    }
    let pong = c.request("PING", None).unwrap().into_ok().unwrap();
    assert_eq!(pong.trim(), "pong");

    // A zero id is also rejected (zero is the untraced sentinel).
    let reply = c.request("TRACE 0", None).unwrap();
    assert!(
        matches!(reply, ClientReply::Err(ErrorCode::BadReq, _)),
        "{reply:?}"
    );

    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn traced_solve_delta_journals_its_lineage_resolution() {
    use maxmin_lp::instance::delta::{Delta, Edit, RowKind};
    use maxmin_lp::instance::hash::instance_hash;
    use maxmin_lp::instance::ids::ConstraintId;

    let journal = temp_dir("delta");
    let (addr, handle) = spawn_server(ServeConfig {
        journal_dir: Some(journal.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(&addr).unwrap();

    let fam = maxmin_lp::gen::catalog();
    let fam = fam.iter().find(|f| f.name == "special-form").unwrap();
    let base = fam.instance(18, 2);
    c.put(&textfmt::write_instance(&base)).unwrap().unwrap();

    let e = base.constraint_row(ConstraintId::new(0))[0];
    let delta = Delta::single(
        instance_hash(&base),
        Edit::SetCoef {
            row: RowKind::Constraint,
            row_id: 0,
            agent: e.agent,
            coef: e.coef * 1.5,
        },
    );

    let trace_id = 0xfeed_f00d_0000_0042;
    c.trace_next(trace_id);
    c.solve_delta_inline(&delta.to_text(), 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    c.stats().unwrap(); // flush the journal

    let (records, report) = read_journal_dir(&journal).unwrap();
    assert_eq!(report.corrupt, 0);
    let deltas: Vec<_> = records
        .iter()
        .filter(|r| r.kind == EV_DELTA && r.trace_id == trace_id)
        .collect();
    assert_eq!(deltas.len(), 1, "{records:?}");
    assert!(deltas[0].text.starts_with("delta "), "{:?}", deltas[0].text);
    assert!(
        deltas[0].text.contains("recomputed_x="),
        "{:?}",
        deltas[0].text
    );
    assert!(deltas[0].text.contains("agents="), "{:?}", deltas[0].text);

    let trees = journaled_trees(&journal, trace_id);
    assert_eq!(trees.len(), 1);
    assert!(
        trees[0].label.starts_with("SOLVE_DELTA "),
        "{:?}",
        trees[0].label
    );

    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn untraced_requests_are_sampled_into_the_span_ring() {
    let journal = temp_dir("sampled");
    let (addr, handle) = spawn_server(ServeConfig {
        journal_dir: Some(journal.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(&addr).unwrap();
    // The very first request hits the sample-every-64 boundary, so at
    // least one untraced request gets a server-minted span tree.
    let hash = c.put(&instance_text()).unwrap().unwrap();
    c.run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "spans_recorded") >= 1, "{stats:?}");
    for key in [
        "delta_latency_p50_us",
        "delta_latency_p95_us",
        "delta_latency_p99_us",
    ] {
        stat(&stats, key); // panics if the key is missing
    }
    c.shutdown().unwrap();
    handle.join().unwrap();
}

/// The crash-recovery contract, end to end: run a journaled server,
/// simulate a `kill -9` by leaving a torn half-written record plus a
/// checksum-corrupted record at the tail, restart on the same
/// directory, and check that (a) the reopened journal truncated the
/// torn tail, (b) every surviving record is checksum-clean, and
/// (c) new records append cleanly after the damage point.
#[test]
fn journal_recovers_from_a_torn_tail_across_server_restarts() {
    let journal = temp_dir("crash");

    // First life: journal a traced solve, then shut down.
    let first_id = 0xabad_1dea_0000_0001;
    {
        let (addr, handle) = spawn_server(ServeConfig {
            journal_dir: Some(journal.clone()),
            ..ServeConfig::default()
        });
        let mut c = Client::connect(&addr).unwrap();
        let hash = c.put(&instance_text()).unwrap().unwrap();
        c.trace_next(first_id);
        c.run_hash(Op::Solve, &hash, 3, 1)
            .unwrap()
            .into_ok()
            .unwrap();
        c.stats().unwrap();
        c.shutdown().unwrap();
        handle.join().unwrap();
    }
    let (records, report) = read_journal_dir(&journal).unwrap();
    assert_eq!(report.corrupt, 0);
    let before = records.len();
    assert!(
        before >= 2,
        "expected store-note + span records, got {records:?}"
    );

    // Simulate the kill -9: append half a record (header promises more
    // payload than exists) to the newest file — a torn tail.
    let mut files: Vec<_> = std::fs::read_dir(&journal)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "mmlpj"))
        .collect();
    files.sort();
    let newest = files.last().unwrap().clone();
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&newest)
            .unwrap();
        // kind=EV_SPAN, payload_len=64, checksum=0, then only 5 bytes
        // of the promised 64-byte payload.
        let mut torn = vec![EV_SPAN];
        torn.extend_from_slice(&64u32.to_le_bytes());
        torn.extend_from_slice(&0u64.to_le_bytes());
        torn.extend_from_slice(b"torn!");
        f.write_all(&torn).unwrap();
    }
    let damaged_len = std::fs::metadata(&newest).unwrap().len();

    // The reader already refuses the torn tail...
    let (recovered, report) = read_journal_dir(&journal).unwrap();
    assert_eq!(
        recovered.len(),
        before,
        "torn tail must not surface records"
    );
    assert_eq!(report.torn_files, 1, "{report:?}");

    // ...and the second life truncates it on open, then appends.
    let second_id = 0xabad_1dea_0000_0002;
    {
        let (addr, handle) = spawn_server(ServeConfig {
            journal_dir: Some(journal.clone()),
            ..ServeConfig::default()
        });
        let mut c = Client::connect(&addr).unwrap();
        let hash = c.put(&instance_text()).unwrap().unwrap();
        c.trace_next(second_id);
        c.run_hash(Op::Solve, &hash, 3, 2)
            .unwrap()
            .into_ok()
            .unwrap();
        c.stats().unwrap();
        c.shutdown().unwrap();
        handle.join().unwrap();
    }
    assert!(
        std::fs::metadata(&newest).unwrap().len() != damaged_len,
        "restart should have truncated the torn tail before appending"
    );

    let (records, report) = read_journal_dir(&journal).unwrap();
    assert_eq!(report.corrupt, 0, "survivors must be checksum-clean");
    assert_eq!(report.torn_files, 0, "the torn tail was healed on open");
    assert!(records.len() > before, "second life appended new records");
    // Both lives' traces survive side by side.
    assert_eq!(journaled_trees(&journal, first_id).len(), 1);
    assert_eq!(journaled_trees(&journal, second_id).len(), 1);

    let _ = std::fs::remove_dir_all(&journal);
}

/// The `maxmin-lp obs trace` / `obs journal` commands read the same
/// directory the server wrote — exercised through the real binary so
/// the CLI surface is covered end to end.
#[test]
fn obs_trace_cli_renders_the_journaled_span_tree() {
    let journal = temp_dir("cli");
    let trace_id = 0xc11f_ace0_0000_0007;
    {
        let (addr, handle) = spawn_server(ServeConfig {
            journal_dir: Some(journal.clone()),
            ..ServeConfig::default()
        });
        let mut c = Client::connect(&addr).unwrap();
        let hash = c.put(&instance_text()).unwrap().unwrap();
        c.trace_next(trace_id);
        c.run_hash(Op::Solve, &hash, 3, 1)
            .unwrap()
            .into_ok()
            .unwrap();
        c.stats().unwrap();
        c.shutdown().unwrap();
        handle.join().unwrap();
    }

    let bin = env!("CARGO_BIN_EXE_maxmin-lp");
    let out = std::process::Command::new(bin)
        .args([
            "obs",
            "trace",
            &format_trace_id(trace_id),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .expect("run obs trace");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "obs trace failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains(&format_trace_id(trace_id)), "{stdout}");
    for name in ["queue", "execute", "flood", "store"] {
        assert!(stdout.contains(name), "missing {name:?} in:\n{stdout}");
    }

    let out = std::process::Command::new(bin)
        .args(["obs", "journal", "--journal", journal.to_str().unwrap()])
        .output()
        .expect("run obs journal");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("record(s)"), "{stdout}");

    // An unknown trace id is a typed error with a nonzero exit, not a
    // panic.
    let out = std::process::Command::new(bin)
        .args([
            "obs",
            "trace",
            "ffffffffffffffff",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .expect("run obs trace (missing id)");
    assert!(!out.status.success(), "missing trace id must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");

    let _ = std::fs::remove_dir_all(&journal);
}
