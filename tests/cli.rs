//! End-to-end tests of the `maxmin-lp` CLI binary (spawned as a real
//! process via the path Cargo exports for integration tests).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_maxmin-lp"))
}

fn run_ok(args: &[&str], stdin_file: Option<&std::path::Path>) -> String {
    let mut cmd = bin();
    cmd.args(args);
    if let Some(f) = stdin_file {
        cmd.current_dir(f.parent().unwrap());
    }
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn generate_info_solve_optimum_pipeline() {
    let dir = std::env::temp_dir().join(format!("mmlp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bandwidth.mmlp");

    // generate
    let text = run_ok(&["generate", "bandwidth", "24", "7"], None);
    assert!(text.starts_with("maxminlp 1"));
    std::fs::write(&file, &text).unwrap();

    // info
    let info = run_ok(&["info", file.to_str().unwrap()], None);
    assert!(info.contains("valid true"), "{info}");
    assert!(info.contains("delta_i 3"));
    assert!(info.contains("delta_k 2"));

    // solve with certification
    let solved = run_ok(
        &["solve", file.to_str().unwrap(), "-R", "4", "--certify"],
        None,
    );
    let get = |key: &str| -> f64 {
        solved
            .lines()
            .find_map(|l| l.strip_prefix(key))
            .unwrap_or_else(|| panic!("missing '{key}' in output:\n{solved}"))
            .trim()
            .parse()
            .unwrap()
    };
    let utility = get("utility ");
    let ratio = get("ratio ");
    let guarantee = get("guarantee ");
    assert!(utility > 0.0);
    assert!(ratio >= 1.0 - 1e-9 && ratio <= guarantee + 1e-9);

    // optimum agrees with the certification block
    let opt_out = run_ok(&["optimum", file.to_str().unwrap()], None);
    let opt: f64 = opt_out
        .lines()
        .find_map(|l| l.strip_prefix("optimum "))
        .unwrap()
        .parse()
        .unwrap();
    assert!((opt - get("optimum ")).abs() < 1e-9);

    // safe baseline runs
    let safe = run_ok(&["safe", file.to_str().unwrap()], None);
    assert!(safe.contains("utility "));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_nonzero() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "no args → usage");
    let out = bin()
        .args(["generate", "no-such-family", "10", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "unknown family → error");
    let out = bin()
        .args(["solve", "/nonexistent/file.mmlp"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "missing file → error");
}

#[test]
fn every_catalog_family_generates_via_cli() {
    for fam in maxmin_lp::gen::catalog() {
        let text = run_ok(&["generate", fam.name, "30", "1"], None);
        let inst = maxmin_lp::instance::textfmt::parse_instance(&text)
            .unwrap_or_else(|e| panic!("family {}: {e}", fam.name));
        assert!(inst.n_agents() > 0);
    }
}
