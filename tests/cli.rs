//! End-to-end tests of the `maxmin-lp` CLI binary (spawned as a real
//! process via the path Cargo exports for integration tests).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_maxmin-lp"))
}

fn run_ok(args: &[&str], stdin_file: Option<&std::path::Path>) -> String {
    let mut cmd = bin();
    cmd.args(args);
    if let Some(f) = stdin_file {
        cmd.current_dir(f.parent().unwrap());
    }
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn generate_out_writes_the_file_atomically() {
    let dir = std::env::temp_dir().join(format!("mmlp-gen-out-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("out.mmlp");

    // --out must produce exactly the bytes stdout would have carried.
    let stdout_text = run_ok(&["generate", "cycle", "12", "5"], None);
    let msg = run_ok(
        &[
            "generate",
            "cycle",
            "12",
            "5",
            "--out",
            file.to_str().unwrap(),
        ],
        None,
    );
    assert!(msg.contains("wrote "), "{msg}");
    assert_eq!(std::fs::read_to_string(&file).unwrap(), stdout_text);

    // Overwriting an existing file goes through the same rename path.
    // (Different size: the cycle family ignores the seed.)
    let other = run_ok(
        &[
            "generate",
            "cycle",
            "16",
            "5",
            "--out",
            file.to_str().unwrap(),
        ],
        None,
    );
    assert!(other.contains("wrote "), "{other}");
    assert_ne!(std::fs::read_to_string(&file).unwrap(), stdout_text);

    // No temp droppings left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");

    // Unknown flag is a usage error.
    let out = bin()
        .args(["generate", "cycle", "12", "5", "--nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_info_solve_optimum_pipeline() {
    let dir = std::env::temp_dir().join(format!("mmlp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bandwidth.mmlp");

    // generate
    let text = run_ok(&["generate", "bandwidth", "24", "7"], None);
    assert!(text.starts_with("maxminlp 1"));
    std::fs::write(&file, &text).unwrap();

    // info
    let info = run_ok(&["info", file.to_str().unwrap()], None);
    assert!(info.contains("valid true"), "{info}");
    assert!(info.contains("delta_i 3"));
    assert!(info.contains("delta_k 2"));

    // solve with certification
    let solved = run_ok(
        &["solve", file.to_str().unwrap(), "-R", "4", "--certify"],
        None,
    );
    let get = |key: &str| -> f64 {
        solved
            .lines()
            .find_map(|l| l.strip_prefix(key))
            .unwrap_or_else(|| panic!("missing '{key}' in output:\n{solved}"))
            .trim()
            .parse()
            .unwrap()
    };
    let utility = get("utility ");
    let ratio = get("ratio ");
    let guarantee = get("guarantee ");
    assert!(utility > 0.0);
    assert!(ratio >= 1.0 - 1e-9 && ratio <= guarantee + 1e-9);

    // optimum agrees with the certification block
    let opt_out = run_ok(&["optimum", file.to_str().unwrap()], None);
    let opt: f64 = opt_out
        .lines()
        .find_map(|l| l.strip_prefix("optimum "))
        .unwrap()
        .parse()
        .unwrap();
    assert!((opt - get("optimum ")).abs() < 1e-9);

    // safe baseline runs
    let safe = run_ok(&["safe", file.to_str().unwrap()], None);
    assert!(safe.contains("utility "));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_nonzero() {
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "no args → usage");
    let out = bin()
        .args(["generate", "no-such-family", "10", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "unknown family → error");
    let out = bin()
        .args(["solve", "/nonexistent/file.mmlp"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "missing file → error");
}

#[test]
fn every_catalog_family_generates_via_cli() {
    for fam in maxmin_lp::gen::catalog() {
        let text = run_ok(&["generate", fam.name, "30", "1"], None);
        let inst = maxmin_lp::instance::textfmt::parse_instance(&text)
            .unwrap_or_else(|e| panic!("family {}: {e}", fam.name));
        assert!(inst.n_agents() > 0);
    }
}
