//! End-to-end tests of the persistence layer behind `--store-dir`:
//! warm-started caches across clean restarts, and crash recovery —
//! `kill -9` mid-load, torn segment tails, byte-identical warm replies
//! after the restart.

use maxmin_lp::gen::catalog;
use maxmin_lp::instance::textfmt;
use maxmin_lp::serve::client::{stat, Client};
use maxmin_lp::serve::protocol::Op;
use maxmin_lp::serve::server::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mmlp-store-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn instance_text() -> String {
    let fams = catalog();
    let fam = fams.iter().find(|f| f.name == "bandwidth").unwrap();
    textfmt::write_instance(&fam.instance(32, 3))
}

#[test]
fn clean_restart_warm_starts_bit_identically() {
    let dir = temp_dir("clean");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let text = instance_text();

    // First life: PUT + solve two ops, remember the replies.
    let server = Server::bind(cfg.clone()).expect("bind 1");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run 1"));
    let mut c = Client::connect(&addr).unwrap();
    let hash = c.put(&text).unwrap().unwrap();
    let solve1 = c
        .run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let opt1 = c
        .run_hash(Op::Optimum, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    c.shutdown().unwrap();
    handle.join().unwrap();

    // Second life on the same directory: no PUT — the instance must be
    // fetchable by hash from the warm-started store, and both replies
    // must be warm cache hits, byte-identical to the first life's.
    let server = Server::bind(cfg).expect("bind 2");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run 2"));
    let mut c = Client::connect(&addr).unwrap();
    let solve2 = c
        .run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let opt2 = c
        .run_hash(Op::Optimum, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(solve1.as_bytes(), solve2.as_bytes());
    assert_eq!(opt1.as_bytes(), opt2.as_bytes());
    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "persist_enabled"), 1);
    assert!(stat(&stats, "warm_instances") >= 1, "{stats:?}");
    assert!(stat(&stats, "warm_results") >= 2, "{stats:?}");
    assert_eq!(stat(&stats, "cache_misses"), 0, "everything was warm");
    assert_eq!(stat(&stats, "cache_hits"), 2);
    assert_eq!(stat(&stats, "persist_errors"), 0);
    c.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.cache_misses, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns the real binary with `--store-dir` and waits for its
/// "listening" line; returns the child and the bound address.
fn spawn_server_process(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_maxmin-lp"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--store-dir",
            dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        assert!(Instant::now() < deadline, "server never reported listening");
        let line = lines.next().expect("stdout open").expect("read line");
        if let Some(a) = line.strip_prefix("listening ") {
            break a.trim().to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn kill_nine_mid_load_then_restart_serves_warm_bit_identical_replies() {
    let dir = temp_dir("kill9");

    // First life (real process): PUT, capture two cold replies, then
    // hammer it with writes and SIGKILL it mid-load.
    let (mut child, addr) = spawn_server_process(&dir);
    let text = instance_text();
    let mut c = Client::connect(&addr).unwrap();
    let hash = c.put(&text).unwrap().unwrap();
    let cold_solve = c
        .run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let cold_opt = c
        .run_hash(Op::Optimum, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();

    // Load thread: a stream of distinct cold solves (R sweep), each of
    // which appends a result record — so the kill lands between, or
    // inside, store appends.
    let load_addr = addr.clone();
    let load_hash = hash.clone();
    let load = std::thread::spawn(move || {
        let Ok(mut c) = Client::connect(&load_addr) else {
            return;
        };
        for big_r in 2..2000usize {
            if c.run_hash(Op::Solve, &load_hash, big_r, 1).is_err() {
                return; // the kill landed
            }
        }
    });
    std::thread::sleep(Duration::from_millis(300));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    load.join().unwrap();

    // Belt and braces: guarantee at least one torn tail, as a crash
    // mid-append would leave, on every non-empty shard.
    let mut torn = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "seg")
            && std::fs::metadata(&path).unwrap().len() > 16
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[1u8, 0xff, 0xff, 0xff, 0x07]).unwrap();
            torn += 1;
        }
    }
    assert!(torn >= 1, "the load must have persisted something");

    // Second life on the same directory: the store opens cleanly
    // (tails repaired), the instance is fetchable by hash without a
    // PUT, and the two known replies are warm hits, byte-identical.
    let (mut child, addr) = spawn_server_process(&dir);
    let mut c = Client::connect(&addr).unwrap();
    let warm_solve = c
        .run_hash(Op::Solve, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    let warm_opt = c
        .run_hash(Op::Optimum, &hash, 3, 1)
        .unwrap()
        .into_ok()
        .unwrap();
    assert_eq!(cold_solve.as_bytes(), warm_solve.as_bytes());
    assert_eq!(cold_opt.as_bytes(), warm_opt.as_bytes());
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "warm_instances") >= 1, "{stats:?}");
    assert!(stat(&stats, "warm_results") >= 2, "{stats:?}");
    assert!(stat(&stats, "cache_hits") >= 2, "{stats:?}");
    assert_eq!(stat(&stats, "cache_misses"), 0, "{stats:?}");
    c.shutdown().unwrap();
    let status = child.wait().expect("clean exit");
    assert!(status.success());

    // After the restart repaired the tails, a full checksum sweep runs
    // clean — through the CLI, as CI does.
    let out = Command::new(env!("CARGO_BIN_EXE_maxmin-lp"))
        .args(["store", "verify", dir.to_str().unwrap()])
        .output()
        .expect("store verify");
    assert!(
        out.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("clean true"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}
