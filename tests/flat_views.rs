//! The flat-view-arena contract, catalog-wide:
//!
//! 1. `solve_distributed` on the flat (hash-consed) path is **bitwise
//!    identical** to the legacy `ViewTree` path — outputs *and* logical
//!    message/byte accounting — for every generator family at
//!    R ∈ {2, 3, 4}.
//! 2. Arena-interned view equality agrees exactly with the legacy
//!    `ViewTree: PartialEq` (property-tested across the catalogue).
//! 3. Non-tree topologies dedup: the arena footprint is strictly
//!    smaller than the logical payload volume.

use maxmin_lp::core::distributed::{
    solve_distributed, solve_distributed_flat, t_batch_flat, FLAT_T_PARALLEL_MIN_WORK,
};
use maxmin_lp::core::transform::to_special_form;
use maxmin_lp::core::SpecialForm;
use maxmin_lp::gen::catalog;
use maxmin_lp::net::{gather_views, gather_views_flat, Network, ViewArena};
use proptest::prelude::*;

/// Special-forms a catalogue instance the way `mmlp-lab`'s distributed
/// jobs do.
fn special(fam: &maxmin_lp::gen::Family, size: usize, seed: u64) -> SpecialForm {
    let inst = fam.instance(size, seed);
    SpecialForm::new(to_special_form(&inst).instance).expect("§4 pipeline produces special form")
}

#[test]
fn flat_path_is_bitwise_identical_across_the_catalog() {
    for fam in catalog() {
        let sf = special(&fam, 12, 1);
        for big_r in [2usize, 3, 4] {
            let legacy = solve_distributed(&sf, big_r);
            let flat = solve_distributed_flat(&sf, big_r, 2);
            for v in 0..sf.n_agents() {
                assert_eq!(
                    flat.solution.as_slice()[v].to_bits(),
                    legacy.solution.as_slice()[v].to_bits(),
                    "x: family {} R {big_r} agent {v}",
                    fam.name
                );
                assert_eq!(
                    flat.t[v].to_bits(),
                    legacy.t[v].to_bits(),
                    "t: family {} R {big_r} agent {v}",
                    fam.name
                );
                assert_eq!(
                    flat.s[v].to_bits(),
                    legacy.s[v].to_bits(),
                    "s: family {} R {big_r} agent {v}",
                    fam.name
                );
            }
            // The logical accounting is reproduced round for round.
            assert_eq!(flat.stats.rounds, legacy.stats.rounds, "{}", fam.name);
            assert_eq!(flat.stats.messages, legacy.stats.messages, "{}", fam.name);
            assert_eq!(flat.stats.bytes, legacy.stats.bytes, "{}", fam.name);
            assert_eq!(
                flat.stats.messages_per_round, legacy.stats.messages_per_round,
                "{}",
                fam.name
            );
            assert_eq!(
                flat.stats.bytes_per_round, legacy.stats.bytes_per_round,
                "{}",
                fam.name
            );
            // And the dedup counters exist on top of it.
            assert!(flat.stats.interned_nodes > 0, "{}", fam.name);
            assert!(flat.stats.arena_bytes > 0, "{}", fam.name);
        }
    }
}

#[test]
fn every_special_form_family_dedups_at_depth() {
    // Every §4-transformed catalogue instance contains cycles (or at
    // minimum re-sent shared subtrees), so the logical payload volume
    // must exceed the deduped arena footprint.
    for fam in catalog() {
        let sf = special(&fam, 14, 3);
        let flat = solve_distributed_flat(&sf, 3, 1);
        assert!(
            flat.stats.dedup_ratio() > 1.0,
            "family {}: dedup ratio {}",
            fam.name,
            flat.stats.dedup_ratio()
        );
    }
}

#[test]
fn thread_counts_are_bit_identical_straddling_the_work_threshold() {
    // One instance below and one above FLAT_T_PARALLEL_MIN_WORK, so the
    // solve exercises both the scalar fallback and the capped-threaded
    // decision; outputs must not depend on either.
    use maxmin_lp::gen::special::{random_special_form, SpecialFormConfig};
    let big_r = 4;
    let depth = 4 * (big_r - 2) + 2;
    let mut seen_below = false;
    let mut seen_above = false;
    for n_objectives in [12usize, 400] {
        let sf = SpecialForm::new(random_special_form(
            &SpecialFormConfig {
                n_objectives,
                ..SpecialFormConfig::default()
            },
            2,
        ))
        .unwrap();
        let net = Network::new(sf.instance());
        let fv = gather_views_flat(&net, depth);
        let n = sf.n_agents();
        let work: u64 = fv.roots[..n].iter().map(|&r| fv.arena.size(r)).sum();
        seen_below |= work < FLAT_T_PARALLEL_MIN_WORK;
        seen_above |= work >= FLAT_T_PARALLEL_MIN_WORK;
        let reference = solve_distributed_flat(&sf, big_r, 1);
        for threads in [2usize, 4, 8] {
            let out = solve_distributed_flat(&sf, big_r, threads);
            for v in 0..n {
                assert_eq!(
                    out.t[v].to_bits(),
                    reference.t[v].to_bits(),
                    "n_obj {n_objectives} threads {threads} agent {v}"
                );
                assert_eq!(
                    out.solution.as_slice()[v].to_bits(),
                    reference.solution.as_slice()[v].to_bits()
                );
            }
        }
    }
    assert!(
        seen_below && seen_above,
        "workloads must straddle FLAT_T_PARALLEL_MIN_WORK = {FLAT_T_PARALLEL_MIN_WORK}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Flat-threaded `t` batches are bit-identical to the scalar batch
    /// at every worker count, catalog-wide at R ∈ {2, 3, 4}. This calls
    /// the uncapped [`t_batch_flat`] partitioner directly, so the
    /// size-weighted parallel path genuinely runs even on hosts whose
    /// available parallelism would make `solve_special_flat` fall back
    /// to scalar.
    #[test]
    fn threaded_t_batch_is_bit_identical_at_every_worker_count(
        size in 8usize..24,
        seed in 0u64..1_000,
    ) {
        for fam in catalog() {
            let sf = special(&fam, size, seed);
            let n = sf.n_agents();
            let net = Network::new(sf.instance());
            for big_r in [2usize, 3, 4] {
                let depth = 4 * (big_r - 2) + 2;
                let fv = gather_views_flat(&net, depth);
                let reference = t_batch_flat(&fv.arena, &fv.roots[..n], big_r, 1);
                for workers in [2usize, 4, 8] {
                    let out = t_batch_flat(&fv.arena, &fv.roots[..n], big_r, workers);
                    for v in 0..n {
                        prop_assert_eq!(
                            out[v].to_bits(),
                            reference[v].to_bits(),
                            "family {} R {} workers {} agent {}",
                            fam.name, big_r, workers, v
                        );
                    }
                }
            }
        }
    }

    /// For every catalogue family: interning the gathered views of all
    /// nodes into one arena yields ids whose equality agrees exactly
    /// with `ViewTree: PartialEq`, and every interned root expands back
    /// to the gathered tree.
    #[test]
    fn arena_equality_agrees_with_view_tree_equality(
        size in 6usize..20,
        seed in 0u64..1_000,
        depth in 1usize..5,
    ) {
        for fam in catalog() {
            let inst = fam.instance(size, seed);
            let net = Network::new(&inst);
            let (trees, tree_stats) = gather_views(&net, depth);
            let flat = gather_views_flat(&net, depth);
            prop_assert_eq!(flat.stats.messages, tree_stats.messages);
            prop_assert_eq!(flat.stats.bytes, tree_stats.bytes);

            // Re-interning the legacy trees lands on the same ids.
            let mut arena: ViewArena = flat.arena.clone();
            for (x, tree) in trees.iter().enumerate() {
                prop_assert_eq!(
                    arena.intern_tree(tree),
                    flat.roots[x],
                    "family {} node {}", fam.name, x
                );
            }

            // Id equality ⇔ tree equality over sampled pairs (all
            // pairs is quadratic; stride keeps the case cheap).
            let n = trees.len();
            for x in (0..n).step_by(3) {
                for y in (x..n).step_by(5) {
                    prop_assert_eq!(
                        flat.roots[x] == flat.roots[y],
                        trees[x] == trees[y],
                        "family {} pair ({}, {})", fam.name, x, y
                    );
                }
            }
        }
    }
}
